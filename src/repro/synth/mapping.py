"""Technology mapping onto the standard-cell library.

The mapper performs the final, architecture-preserving translation of a
netlist into library cells:

* n-ary AND/OR/XOR/NAND/NOR/XNOR gates are decomposed into balanced trees of
  the widest cells the library offers for that operator family;
* NOT/BUF/MUX and the arithmetic macro-gates (half/full adder sum and carry)
  map onto their dedicated cells;
* every mapped gate is assigned a concrete :class:`~repro.synth.library.Cell`.

The result is a :class:`MappedDesign` on which timing and area analysis run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..circuit import gates
from ..circuit.netlist import Netlist
from .library import Cell, Library, default_library


class MappingError(ValueError):
    """Raised when a netlist cannot be mapped onto the target library."""


@dataclass
class MappedDesign:
    """A technology-mapped netlist with its cell assignment."""

    netlist: Netlist
    library: Library
    cell_of: Dict[str, Cell] = field(default_factory=dict)  # keyed by output net

    @property
    def area(self) -> float:
        """Total cell area in µm²."""
        return sum(cell.area for cell in self.cell_of.values())

    @property
    def num_cells(self) -> int:
        return len(self.cell_of)

    def cell_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for cell in self.cell_of.values():
            histogram[cell.name] = histogram.get(cell.name, 0) + 1
        return dict(sorted(histogram.items()))


# Pairs of (inverting op, non-inverting op) used when decomposing wide gates.
_TREE_FAMILY = {
    gates.AND: (gates.AND, None),
    gates.OR: (gates.OR, None),
    gates.XOR: (gates.XOR, None),
    gates.NAND: (gates.AND, gates.NAND),
    gates.NOR: (gates.OR, gates.NOR),
    gates.XNOR: (gates.XOR, gates.XNOR),
}


def _max_arity(library: Library, op: str) -> int:
    arity = 0
    for cell in library.cells.values():
        if cell.op == op:
            arity = max(arity, cell.arity)
    return arity


def _reduce_tree(netlist: Netlist, op: str, nets: Sequence[str], max_arity: int) -> str:
    """Balanced reduction of ``nets`` with gates of at most ``max_arity`` inputs."""
    level = list(nets)
    if not level:
        raise MappingError(f"cannot reduce an empty input list with {op}")
    while len(level) > 1:
        next_level: List[str] = []
        index = 0
        while index < len(level):
            chunk = level[index:index + max_arity]
            if len(chunk) == 1:
                next_level.append(chunk[0])
            else:
                next_level.append(netlist.add_gate(op, chunk))
            index += max_arity
        level = next_level
    return level[0]


def technology_map(netlist: Netlist, library: Library | None = None) -> MappedDesign:
    """Map a netlist onto the library, decomposing wide gates as needed."""
    library = library or default_library()
    mapped = Netlist(f"{netlist.name}_mapped")
    mapped.add_inputs(netlist.inputs)
    cell_of: Dict[str, Cell] = {}
    net_translation: Dict[str, str] = {name: name for name in netlist.inputs}

    def emit_cell(op: str, inputs: Sequence[str], output: str | None = None) -> str:
        cell = library.cell_for(op, len(inputs))
        if cell is None:
            raise MappingError(f"library {library.name!r} has no cell for {op}/{len(inputs)}")
        out = mapped.add_gate(op, inputs, output)
        cell_of[out] = cell
        return out

    def emit_tree(op_family: str, final_op: str | None, inputs: Sequence[str], output: str | None) -> str:
        max_arity = _max_arity(library, op_family)
        if max_arity < 2:
            raise MappingError(f"library {library.name!r} cannot implement {op_family}")
        if final_op is None:
            # Reduce everything but the last level, then emit the last gate with
            # the requested output name so downstream references stay valid.
            if len(inputs) <= max_arity:
                return emit_cell(op_family, inputs, output)
            # First reduce to at most max_arity intermediate nets.
            level = list(inputs)
            while len(level) > max_arity:
                next_level: List[str] = []
                index = 0
                while index < len(level):
                    chunk = level[index:index + max_arity]
                    if len(chunk) == 1:
                        next_level.append(chunk[0])
                    else:
                        next_level.append(emit_cell(op_family, chunk))
                    index += max_arity
                level = next_level
            return emit_cell(op_family, level, output)
        # Inverting family: build the non-inverting tree, finish with the
        # inverting gate (or a plain 2-input inverting cell when it fits).
        if len(inputs) <= _max_arity(library, final_op):
            return emit_cell(final_op, inputs, output)
        level = list(inputs)
        while len(level) > 2:
            next_level = []
            index = 0
            while index < len(level):
                chunk = level[index:index + max_arity]
                if len(chunk) == 1:
                    next_level.append(chunk[0])
                else:
                    next_level.append(emit_cell(op_family, chunk))
                index += max_arity
            level = next_level
        return emit_cell(final_op, level, output)

    for gate in netlist.topological_gates():
        inputs = [net_translation[net] for net in gate.inputs]
        # Never reuse source net names for mapped gate outputs: the mapped
        # netlist generates its own names and ``net_translation`` records the
        # correspondence (this avoids collisions with auto-generated names).
        output = None
        if gate.op in (gates.CONST0, gates.CONST1):
            out = emit_cell(gate.op, [], output)
        elif gate.op in (gates.NOT, gates.BUF):
            out = emit_cell(gate.op, inputs, output)
        elif gate.op == gates.MUX:
            out = emit_cell(gates.MUX, inputs, output)
        elif gate.op in (gates.HA_SUM, gates.HA_CARRY, gates.FA_SUM, gates.FA_CARRY):
            out = emit_cell(gate.op, inputs, output)
        elif gate.op in _TREE_FAMILY:
            if len(inputs) == 1:
                out = emit_cell(gates.BUF, inputs, output)
            else:
                family, final = _TREE_FAMILY[gate.op]
                out = emit_tree(family, final, inputs, output)
        else:
            raise MappingError(f"unsupported gate operator {gate.op!r}")
        net_translation[gate.output] = out

    for port, net in netlist.outputs.items():
        mapped.set_output(port, net_translation.get(net, net))
    return MappedDesign(mapped, library, cell_of)
