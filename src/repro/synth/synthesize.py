"""End-to-end synthesis entry points (the Design Compiler substitute).

``synthesize_netlist`` technology-maps a structural netlist and runs timing;
``synthesize_expressions`` first structures a Boolean specification (ANF
outputs) with one of the :mod:`repro.synth.structuring` strategies.  Both
return a :class:`SynthesisResult` carrying the area/delay numbers that the
Table 1 harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..anf.expression import Anf
from ..circuit.netlist import Netlist
from .library import Library, default_library
from .mapping import MappedDesign, technology_map
from .structuring import EmitContext, build_netlist_from_expressions, emit_with_strategy
from .timing import TimingReport, analyze_timing


@dataclass
class SynthesisResult:
    """Area/delay outcome of synthesising one design."""

    name: str
    source: Netlist
    mapped: MappedDesign
    timing: TimingReport

    @property
    def area(self) -> float:
        """Total cell area (µm² in the library's scale)."""
        return self.mapped.area

    @property
    def delay(self) -> float:
        """Critical-path delay (ns)."""
        return self.timing.delay

    @property
    def num_cells(self) -> int:
        return self.mapped.num_cells

    @property
    def depth(self) -> int:
        return self.mapped.netlist.depth()

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "area_um2": round(self.area, 1),
            "delay_ns": round(self.delay, 3),
            "cells": self.num_cells,
            "depth": self.depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SynthesisResult({self.name!r}, area={self.area:.1f}um2, "
            f"delay={self.delay:.3f}ns, cells={self.num_cells})"
        )


def synthesize_netlist(
    netlist: Netlist, library: Library | None = None, name: str | None = None
) -> SynthesisResult:
    """Technology-map a structural netlist and analyse its timing."""
    library = library or default_library()
    mapped = technology_map(netlist, library)
    timing = analyze_timing(mapped)
    return SynthesisResult(name or netlist.name, netlist, mapped, timing)


def synthesize_expressions(
    outputs: Mapping[str, Anf],
    strategy: str = "auto",
    inputs: Sequence[str] | None = None,
    library: Library | None = None,
    objective: str = "delay",
    name: str = "design",
    shannon_order: Sequence[str] | None = None,
) -> SynthesisResult:
    """Structure a Boolean specification and synthesise it."""
    library = library or default_library()
    netlist = build_netlist_from_expressions(
        outputs,
        strategy=strategy,
        inputs=inputs,
        library=library,
        objective=objective,
        name=name,
        shannon_order=shannon_order,
    )
    return synthesize_netlist(netlist, library, name)


def score_candidate(
    expr: Anf, strategy: str, library: Library, objective: str = "delay"
) -> tuple[float, float]:
    """Map a single-expression candidate structure and score it.

    Returns a tuple ordered so that smaller is better under ``objective``:
    ``"delay"`` -> (delay, area), ``"area"`` -> (area, delay),
    ``"balanced"`` -> (area*delay, delay).
    """
    scratch = Netlist(f"scratch_{strategy}")
    support = list(expr.support)
    scratch.add_inputs(support)
    emit = EmitContext(scratch, {name: name for name in support})
    net = emit_with_strategy(emit, expr, strategy)
    scratch.set_output("f", net)
    mapped = technology_map(scratch, library)
    timing = analyze_timing(mapped)
    if objective == "area":
        return (mapped.area, timing.delay)
    if objective == "balanced":
        return (mapped.area * max(timing.delay, 1e-9), timing.delay)
    return (timing.delay, mapped.area)
