"""End-to-end synthesis entry points (the Design Compiler substitute).

``synthesize_netlist`` technology-maps a structural netlist and runs timing;
``synthesize_expressions`` first structures a Boolean specification (ANF
outputs) with one of the :mod:`repro.synth.structuring` strategies.  Both
return a :class:`SynthesisResult` carrying the area/delay numbers that the
Table 1 harness reports.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from ..anf.expression import Anf
from ..circuit.netlist import Netlist
from .library import Library, default_library
from .mapping import MappedDesign, technology_map
from .structuring import (
    EmitContext,
    StructuringError,
    build_netlist_from_expressions,
    emit_with_strategy,
)
from .timing import TimingReport, analyze_timing


@dataclass
class SynthesisResult:
    """Area/delay outcome of synthesising one design."""

    name: str
    source: Netlist
    mapped: MappedDesign
    timing: TimingReport

    @property
    def area(self) -> float:
        """Total cell area (µm² in the library's scale)."""
        return self.mapped.area

    @property
    def delay(self) -> float:
        """Critical-path delay (ns)."""
        return self.timing.delay

    @property
    def num_cells(self) -> int:
        return self.mapped.num_cells

    @property
    def depth(self) -> int:
        return self.mapped.netlist.depth()

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "area_um2": round(self.area, 1),
            "delay_ns": round(self.delay, 3),
            "cells": self.num_cells,
            "depth": self.depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SynthesisResult({self.name!r}, area={self.area:.1f}um2, "
            f"delay={self.delay:.3f}ns, cells={self.num_cells})"
        )


def synthesize_netlist(
    netlist: Netlist, library: Library | None = None, name: str | None = None
) -> SynthesisResult:
    """Technology-map a structural netlist and analyse its timing."""
    library = library or default_library()
    mapped = technology_map(netlist, library)
    timing = analyze_timing(mapped)
    return SynthesisResult(name or netlist.name, netlist, mapped, timing)


def synthesize_expressions(
    outputs: Mapping[str, Anf],
    strategy: str = "auto",
    inputs: Sequence[str] | None = None,
    library: Library | None = None,
    objective: str = "delay",
    name: str = "design",
    shannon_order: Sequence[str] | None = None,
) -> SynthesisResult:
    """Structure a Boolean specification and synthesise it."""
    library = library or default_library()
    netlist = build_netlist_from_expressions(
        outputs,
        strategy=strategy,
        inputs=inputs,
        library=library,
        objective=objective,
        name=name,
        shannon_order=shannon_order,
    )
    return synthesize_netlist(netlist, library, name)


# Candidate scores keyed by (expression shape, strategy, objective) per
# library.  Two expressions that differ only by an order-preserving renaming
# of their support build isomorphic scratch netlists and therefore map to the
# same area/delay, and structured circuits repeat a handful of block shapes
# (full-adder sums, carries, priority cells) dozens of times.
_SCORE_MEMO: "weakref.WeakKeyDictionary[Library, Dict]" = weakref.WeakKeyDictionary()

#: Entries kept per library before the shape memo is cleared wholesale.
SCORE_MEMO_LIMIT = 1 << 14

#: Sentinel recording that a strategy is structurally inapplicable to a shape.
_INAPPLICABLE = object()


def _shape_key(expr: Anf) -> frozenset:
    """The expression's term set with its support compressed to 0..m-1."""
    position_of: Dict[int, int] = {}
    support = expr.support_mask
    while support:
        low = support & -support
        position_of[low] = len(position_of)
        support ^= low
    shape = []
    for term in expr.terms:
        local = 0
        mask = term
        while mask:
            low = mask & -mask
            local |= 1 << position_of[low]
            mask ^= low
        shape.append(local)
    return frozenset(shape)


def score_candidate(
    expr: Anf, strategy: str, library: Library, objective: str = "delay"
) -> tuple[float, float]:
    """Map a single-expression candidate structure and score it.

    Returns a tuple ordered so that smaller is better under ``objective``:
    ``"delay"`` -> (delay, area), ``"area"`` -> (area, delay),
    ``"balanced"`` -> (area*delay, delay).  Scores are memoised per library
    on the expression's *shape*, so repeated block structures score in O(1).
    """
    memo = _SCORE_MEMO.get(library)
    if memo is None:
        memo = _SCORE_MEMO[library] = {}
    key = (_shape_key(expr), strategy, objective)
    cached = memo.get(key)
    if cached is not None:
        if cached is _INAPPLICABLE:
            raise StructuringError(
                f"strategy {strategy!r} is not applicable to this expression shape"
            )
        return cached
    scratch = Netlist(f"scratch_{strategy}")
    support = list(expr.support)
    scratch.add_inputs(support)
    emit = EmitContext(scratch, {name: name for name in support})
    try:
        net = emit_with_strategy(emit, expr, strategy)
    except StructuringError:
        # Only the deterministic "strategy does not apply" signal is worth
        # remembering; environment-dependent failures must not be sticky.
        if len(memo) >= SCORE_MEMO_LIMIT:
            memo.clear()
        memo[key] = _INAPPLICABLE
        raise
    scratch.set_output("f", net)
    mapped = technology_map(scratch, library)
    timing = analyze_timing(mapped)
    if objective == "area":
        score: Tuple[float, float] = (mapped.area, timing.delay)
    elif objective == "balanced":
        score = (mapped.area * max(timing.delay, 1e-9), timing.delay)
    else:
        score = (timing.delay, mapped.area)
    if len(memo) >= SCORE_MEMO_LIMIT:
        memo.clear()
    memo[key] = score
    return score
