"""Synthesis substrate: cell library, structuring, mapping, timing, area.

This package plays the role of Synopsys Design Compiler + the UMC 0.13 µm
library in the paper's experimental flow (see DESIGN.md for the substitution
argument).
"""

from .library import Cell, Library, default_library
from .mapping import MappedDesign, MappingError, technology_map
from .structuring import (
    EmitContext,
    StructuringError,
    available_strategies,
    build_netlist_from_expressions,
    emit_anf,
    emit_auto,
    emit_factored,
    emit_shannon,
    emit_sop,
    emit_with_strategy,
)
from .synthesize import SynthesisResult, score_candidate, synthesize_expressions, synthesize_netlist
from .timing import PathElement, TimingReport, analyze_timing
from .twolevel import Implicant, implicants_to_sop, minimize_anf_to_sop, minimize_sop, quine_mccluskey

__all__ = [
    "Cell",
    "EmitContext",
    "Implicant",
    "Library",
    "MappedDesign",
    "MappingError",
    "PathElement",
    "StructuringError",
    "SynthesisResult",
    "TimingReport",
    "analyze_timing",
    "available_strategies",
    "build_netlist_from_expressions",
    "default_library",
    "emit_anf",
    "emit_auto",
    "emit_factored",
    "emit_shannon",
    "emit_sop",
    "emit_with_strategy",
    "implicants_to_sop",
    "minimize_anf_to_sop",
    "minimize_sop",
    "quine_mccluskey",
    "score_candidate",
    "synthesize_expressions",
    "synthesize_netlist",
    "technology_map",
]
