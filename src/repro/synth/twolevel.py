"""Two-level (SOP) minimisation: Quine-McCluskey with a greedy cover.

Used by the block-level synthesiser to produce compact AND-OR structures for
the small leader expressions that Progressive Decomposition emits, and by the
baseline flow when the specification is given as an SOP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..anf.context import Context
from ..anf.expression import Anf
from ..anf.sop import Cube, Sop


@dataclass(frozen=True)
class Implicant:
    """A cube over local variable positions: ``care`` bits fixed to ``value``."""

    value: int  # values of the fixed positions
    care: int   # bitmask of positions that are fixed

    def covers(self, minterm: int) -> bool:
        return (minterm & self.care) == (self.value & self.care)

    @property
    def num_literals(self) -> int:
        return self.care.bit_count()


def quine_mccluskey(
    num_vars: int, minterms: Iterable[int], dont_cares: Iterable[int] = ()
) -> list[Implicant]:
    """Minimise a single-output function given by its on-set minterms.

    Returns a (greedily) minimal list of prime implicants covering every
    on-set minterm.  Exact prime generation, greedy set cover — the classical
    compromise that is more than adequate for block-level expressions.
    """
    on_set = sorted(set(minterms))
    dc_set = sorted(set(dont_cares) - set(on_set))
    if not on_set:
        return []
    full_care = (1 << num_vars) - 1
    if num_vars == 0:
        return [Implicant(0, 0)]

    # --- prime implicant generation -----------------------------------
    current = {Implicant(m, full_care) for m in on_set + dc_set}
    primes: set[Implicant] = set()
    while current:
        merged_from: set[Implicant] = set()
        next_level: set[Implicant] = set()
        grouped: dict[tuple[int, int], list[Implicant]] = {}
        for implicant in current:
            grouped.setdefault((implicant.care, (implicant.value & implicant.care).bit_count()), []).append(implicant)
        for (care, ones), bucket in grouped.items():
            partner_key = (care, ones + 1)
            for other in grouped.get(partner_key, []):
                for implicant in bucket:
                    difference = (implicant.value ^ other.value) & care
                    if difference and (difference & (difference - 1)) == 0:
                        next_level.add(Implicant(implicant.value & ~difference, care & ~difference))
                        merged_from.add(implicant)
                        merged_from.add(other)
        primes.update(current - merged_from)
        current = next_level

    # --- greedy cover ---------------------------------------------------
    remaining = set(on_set)
    prime_list = sorted(primes, key=lambda p: (p.num_literals, p.care, p.value))
    chosen: list[Implicant] = []

    # Essential primes first.
    cover_map: dict[int, list[Implicant]] = {m: [] for m in remaining}
    for prime in prime_list:
        for minterm in remaining:
            if prime.covers(minterm):
                cover_map[minterm].append(prime)
    for minterm, covers in cover_map.items():
        if len(covers) == 1 and covers[0] not in chosen:
            chosen.append(covers[0])
    for prime in chosen:
        remaining = {m for m in remaining if not prime.covers(m)}

    while remaining:
        best = max(
            prime_list,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), -p.num_literals),
        )
        covered = {m for m in remaining if best.covers(m)}
        if not covered:
            # Should not happen: every on-set minterm is covered by some prime.
            raise RuntimeError("greedy cover failed to make progress")
        chosen.append(best)
        remaining -= covered
    return chosen


def implicants_to_sop(
    ctx: Context, variables: Sequence[str], implicants: Iterable[Implicant]
) -> Sop:
    """Translate local implicants back into a context-level :class:`Sop`."""
    indices = [ctx.index(name) for name in variables]
    cubes = []
    for implicant in implicants:
        positive = 0
        negative = 0
        for local, global_index in enumerate(indices):
            if implicant.care >> local & 1:
                if implicant.value >> local & 1:
                    positive |= 1 << global_index
                else:
                    negative |= 1 << global_index
        cubes.append(Cube(positive, negative))
    return Sop(ctx, cubes)


def minimize_anf_to_sop(expr: Anf, variables: Sequence[str] | None = None) -> Sop:
    """Minimised SOP of an ANF expression (exponential in its support size)."""
    ctx = expr.ctx
    if variables is None:
        variables = list(expr.support)
    n = len(variables)
    if n > 16:
        raise ValueError("two-level minimisation is exponential; refusing more than 16 variables")
    indices = [ctx.index(name) for name in variables]
    minterms = []
    for point in range(1 << n):
        ones_mask = 0
        for local in range(n):
            if point >> local & 1:
                ones_mask |= 1 << indices[local]
        if expr.evaluate_mask(ones_mask):
            minterms.append(point)
    implicants = quine_mccluskey(n, minterms)
    return implicants_to_sop(ctx, variables, implicants)


def minimize_sop(sop: Sop, variables: Sequence[str] | None = None) -> Sop:
    """Re-minimise an SOP (round-trips through its ANF semantics)."""
    return minimize_anf_to_sop(sop.to_anf(), variables)
