"""Standard-cell library model (the UMC 0.13 µm substitute).

The paper synthesises every circuit with Synopsys Design Compiler onto a UMC
0.13 µm standard-cell library and reports cell area (µm²) and critical-path
delay (ns).  We model a comparable library: each cell has an area, an
intrinsic delay and a per-fanout load delay.  Absolute numbers are calibrated
to be 0.13 µm-plausible; the evaluation only relies on *relative* comparisons
between architectures mapped onto the same library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..circuit import gates


@dataclass(frozen=True)
class Cell:
    """One standard cell.

    ``load_delay`` is added once per fanout beyond the first, a simple lumped
    model of output loading and wiring that penalises the high-fanout nets the
    paper's motivation section complains about.
    """

    name: str
    op: str
    arity: int
    area: float
    delay: float
    load_delay: float

    def delay_with_fanout(self, fanout: int) -> float:
        """Pin-to-pin delay when the output drives ``fanout`` sinks."""
        extra_sinks = max(0, fanout - 1)
        return self.delay + self.load_delay * extra_sinks


class Library:
    """A collection of cells indexed by (operator, arity)."""

    def __init__(self, name: str, cells: Iterable[Cell]) -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._by_op: Dict[tuple[str, int], Cell] = {}
        for cell in cells:
            self.add_cell(cell)

    def add_cell(self, cell: Cell) -> None:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell
        key = (cell.op, cell.arity)
        existing = self._by_op.get(key)
        # Keep the smallest-area cell as the default choice for an op/arity.
        if existing is None or cell.area < existing.area:
            self._by_op[key] = cell

    @property
    def cells(self) -> Dict[str, Cell]:
        return dict(self._cells)

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"no cell named {name!r} in library {self.name!r}") from None

    def cell_for(self, op: str, arity: int) -> Cell | None:
        """The default cell implementing ``op`` with the given arity, if any."""
        return self._by_op.get((op, arity))

    def has(self, op: str, arity: int) -> bool:
        return (op, arity) in self._by_op

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Library({self.name!r}, {len(self._cells)} cells)"


def default_library() -> Library:
    """A 0.13 µm-class generic standard-cell library.

    Areas are in µm², delays in ns.  Values follow the usual relative ordering
    of a commercial library: inverters and NAND gates are the cheapest and
    fastest, XOR/MUX cost roughly two simple gates, and the dedicated
    full-adder cell has a fast carry output (which is what makes ripple-carry
    adders competitive at 16 bits, as Table 1 of the paper shows).
    """
    cells = [
        Cell("INVX1", gates.NOT, 1, 2.9, 0.011, 0.0045),
        Cell("BUFX2", gates.BUF, 1, 3.6, 0.016, 0.0035),
        Cell("NAND2X1", gates.NAND, 2, 3.6, 0.014, 0.0050),
        Cell("NOR2X1", gates.NOR, 2, 3.6, 0.018, 0.0055),
        Cell("AND2X1", gates.AND, 2, 4.3, 0.021, 0.0050),
        Cell("OR2X1", gates.OR, 2, 4.3, 0.023, 0.0050),
        Cell("NAND3X1", gates.NAND, 3, 4.7, 0.019, 0.0060),
        Cell("NOR3X1", gates.NOR, 3, 4.7, 0.026, 0.0065),
        Cell("AND3X1", gates.AND, 3, 5.4, 0.026, 0.0060),
        Cell("OR3X1", gates.OR, 3, 5.4, 0.029, 0.0060),
        Cell("AND4X1", gates.AND, 4, 6.5, 0.031, 0.0065),
        Cell("OR4X1", gates.OR, 4, 6.5, 0.034, 0.0065),
        Cell("XOR2X1", gates.XOR, 2, 7.2, 0.040, 0.0060),
        Cell("XNOR2X1", gates.XNOR, 2, 7.2, 0.040, 0.0060),
        Cell("MUX2X1", gates.MUX, 3, 7.9, 0.036, 0.0060),
        Cell("HAX1_S", gates.HA_SUM, 2, 6.5, 0.040, 0.0060),
        Cell("HAX1_C", gates.HA_CARRY, 2, 4.3, 0.020, 0.0050),
        Cell("FAX1_S", gates.FA_SUM, 3, 11.5, 0.058, 0.0060),
        Cell("FAX1_C", gates.FA_CARRY, 3, 7.9, 0.033, 0.0055),
        Cell("TIE0", gates.CONST0, 0, 1.4, 0.0, 0.0),
        Cell("TIE1", gates.CONST1, 0, 1.4, 0.0, 0.0),
    ]
    return Library("generic-0.13um", cells)
