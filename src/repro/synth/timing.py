"""Static timing analysis on technology-mapped designs.

A simple but faithful delay model: every cell contributes its intrinsic delay
plus a load term proportional to the fanout of its output net.  Primary
inputs arrive at time 0.  The critical path is the latest arrival at any
primary output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .mapping import MappedDesign


@dataclass
class PathElement:
    """One stage of the critical path."""

    net: str
    cell: str
    arrival: float


@dataclass
class TimingReport:
    """Arrival times and the critical path of a mapped design."""

    delay: float
    critical_output: str | None
    arrival: Dict[str, float] = field(default_factory=dict)
    critical_path: List[PathElement] = field(default_factory=list)

    def path_description(self) -> str:
        stages = [f"{element.net} ({element.cell}) @ {element.arrival:.3f}ns"
                  for element in self.critical_path]
        return " -> ".join(stages)


def analyze_timing(design: MappedDesign) -> TimingReport:
    """Compute arrival times and extract the critical path."""
    netlist = design.netlist
    fanout = netlist.fanout_counts()
    arrival: Dict[str, float] = {net: 0.0 for net in netlist.inputs}
    predecessor: Dict[str, str | None] = {net: None for net in netlist.inputs}

    for gate in netlist.topological_gates():
        cell = design.cell_of.get(gate.output)
        if cell is None:
            # Unmapped gate (should not happen for MappedDesign); treat as zero delay.
            gate_delay = 0.0
        else:
            gate_delay = cell.delay_with_fanout(fanout.get(gate.output, 1))
        if gate.inputs:
            worst_net = max(gate.inputs, key=lambda net: arrival.get(net, 0.0))
            start = arrival.get(worst_net, 0.0)
        else:
            worst_net = None
            start = 0.0
        arrival[gate.output] = start + gate_delay
        predecessor[gate.output] = worst_net

    critical_output = None
    delay = 0.0
    for port, net in netlist.outputs.items():
        port_arrival = arrival.get(net, 0.0)
        if critical_output is None or port_arrival > delay:
            delay = port_arrival
            critical_output = port

    path: List[PathElement] = []
    if critical_output is not None:
        net: str | None = netlist.outputs[critical_output]
        while net is not None:
            cell = design.cell_of.get(net)
            path.append(PathElement(net, cell.name if cell else "input", arrival.get(net, 0.0)))
            net = predecessor.get(net)
        path.reverse()
    return TimingReport(delay=delay, critical_output=critical_output,
                        arrival=arrival, critical_path=path)
