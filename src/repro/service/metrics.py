"""Operating-point counters for the decomposition service.

The service reports how it behaves *under load*, not just per-circuit cold
times: submission/completion counters, the three ways a submission can be
satisfied (in-flight dedup, disk cache, fresh computation), live queue
depth, and request-latency percentiles over a sliding window.  Everything
is plain integers/floats mutated from the single asyncio event-loop thread,
so there is nothing to lock; ``/metrics`` renders ``snapshot()`` as JSON.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional

from ..engine.cache import CacheTelemetry

#: Completed-job latencies kept for the percentile window.
LATENCY_WINDOW = 10_000


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 on empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values))))
    return sorted_values[rank]


class ServiceMetrics:
    """Counters + latency window behind ``GET /metrics``."""

    def __init__(self) -> None:
        self.started_at = time.time()
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0           # malformed specs (HTTP 400)
        #: Submissions satisfied by subscribing to an identical in-flight
        #: job — the thundering-herd counter.
        self.dedup_inflight_hits = 0
        #: Worker outcomes: decomposition loaded from the on-disk store.
        self.cache_hits = 0
        #: Worker outcomes: decomposition actually computed (cache miss).
        self.computations = 0
        #: Jobs handed to the pool and not yet finished.
        self.queue_depth = 0
        #: Execution attempts relaunched after a worker death.
        self.retries = 0
        #: Jobs failed for exceeding their wall-clock timeout.
        self.timeouts = 0
        #: Execution attempts lost to a worker/pool crash (one death that
        #: breaks a pool with several in-flight attempts counts each).
        self.worker_deaths = 0
        #: Digests quarantined after exhausting their worker-crash retries.
        self.quarantined_jobs = 0
        #: Connections dropped with HTTP 408 (request/header read timeout).
        self.request_timeouts = 0
        #: Distinct digests currently in flight (primaries, not subscribers).
        self.inflight_unique = 0
        self.latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        #: Parent-side cache telemetry (only exercised by in-process
        #: execution paths; worker-side hits arrive via ``record_outcome``).
        self.cache_telemetry = CacheTelemetry()

    # ------------------------------------------------------------------
    def record_outcome(self, cache_hit: bool) -> None:
        """Count how a primary job's decomposition was obtained."""
        if cache_hit:
            self.cache_hits += 1
        else:
            self.computations += 1

    def record_completion(self, latency_seconds: Optional[float], failed: bool) -> None:
        if failed:
            self.jobs_failed += 1
        else:
            self.jobs_completed += 1
        if latency_seconds is not None:
            self.latencies.append(latency_seconds)

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Disk hits / worker-executed jobs (dedup subscribers excluded)."""
        executed = self.cache_hits + self.computations
        return self.cache_hits / executed if executed else 0.0

    @property
    def dedup_rate(self) -> float:
        """In-flight dedup hits / submissions."""
        if not self.jobs_submitted:
            return 0.0
        return self.dedup_inflight_hits / self.jobs_submitted

    def snapshot(
        self,
        admission: Optional[Dict[str, object]] = None,
        quarantine_size: int = 0,
    ) -> Dict[str, object]:
        """JSON-ready metrics body.

        ``admission`` is the admission controller's own snapshot (the
        controller lives in the server, not here) and ``quarantine_size``
        the current entry count of the server's quarantine map — both are
        event-loop-owned, so the server passes them in at render time.
        """
        window = sorted(self.latencies)
        body: Dict[str, object] = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "failed": self.jobs_failed,
                "rejected": self.jobs_rejected,
            },
            "dedup": {
                "inflight_hits": self.dedup_inflight_hits,
                "rate": round(self.dedup_rate, 4),
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.computations,
                "hit_rate": round(self.cache_hit_rate, 4),
                "parent_store": self.cache_telemetry.snapshot(),
            },
            "queue": {
                "depth": self.queue_depth,
                "inflight_unique": self.inflight_unique,
            },
            "reliability": {
                "retries": self.retries,
                "timeouts": self.timeouts,
                "worker_deaths": self.worker_deaths,
                "quarantined_jobs": self.quarantined_jobs,
                "quarantine_size": quarantine_size,
                "request_timeouts": self.request_timeouts,
            },
            "latency_seconds": {
                "count": len(window),
                "p50": round(percentile(window, 0.50), 4),
                "p99": round(percentile(window, 0.99), 4),
                "max": round(window[-1], 4) if window else 0.0,
            },
        }
        if admission is not None:
            body["admission"] = admission
        return body
