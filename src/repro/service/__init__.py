"""Decomposition-as-a-service: a long-lived HTTP front-end over the engine.

``python -m repro.service`` starts the server; see ``docs/SERVICE.md`` for
the operator's guide (endpoints, job lifecycle, dedup semantics, shutdown).

The package splits into the job model (:mod:`repro.service.jobs`: spec
validation, canonical job digests, the pool-worker body), the operating
point counters (:mod:`repro.service.metrics`), the admission layer
(:mod:`repro.service.admission`: width-weighted cost quotas, load
shedding, brownout) and the asyncio HTTP server
(:mod:`repro.service.server`), all stdlib + the existing engine.
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
    admission_config_from_env,
)
from .jobs import (
    CIRCUITS,
    Job,
    JobSpec,
    JobState,
    SpecError,
    execute_job,
    parse_job_spec,
)
from .metrics import ServiceMetrics
from .server import (
    DecompositionService,
    ServiceConfig,
    ServiceThread,
    run_service,
)

__all__ = [
    "CIRCUITS",
    "AdmissionConfig",
    "AdmissionController",
    "DecompositionService",
    "Job",
    "JobSpec",
    "JobState",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceThread",
    "SpecError",
    "TokenBucket",
    "admission_config_from_env",
    "execute_job",
    "parse_job_spec",
    "run_service",
]
