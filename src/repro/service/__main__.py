"""CLI entry point: ``python -m repro.service [--port N] [--cache-dir DIR]``.

Prints one ``listening on http://HOST:PORT`` line once the socket is bound
(``--port 0`` picks a free port; ``--port-file`` additionally writes the
bound port to a file, which is race-free for scripted callers).  SIGINT and
SIGTERM trigger the same graceful shutdown as ``POST /shutdown``: drain
in-flight jobs, close the worker pool, stop the listener.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys

from .server import ServiceConfig, run_service


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="decomposition/synthesis job server (see docs/SERVICE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="TCP port; 0 picks a free one (default 8321)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared on-disk result store (DecompositionCache "
                             "+ SynthesisCache under DIR; no caching when omitted)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for the fork pool; 0 runs jobs "
                             "on one in-process thread (default: CPU count)")
    parser.add_argument("--port-file", default=None, metavar="PATH",
                        help="write the bound port to PATH once listening")
    parser.add_argument("--drain-timeout", type=float, default=120.0,
                        help="max seconds to wait for in-flight jobs on shutdown")
    parser.add_argument("--job-timeout", type=float, default=300.0, metavar="S",
                        help="default per-job wall-clock limit in seconds; a "
                             "spec's 'timeout' field overrides it (default 300)")
    parser.add_argument("--max-retries", type=int, default=2, metavar="N",
                        help="retries for jobs whose worker crashed; a spec's "
                             "'max_retries' field overrides it (default 2)")
    parser.add_argument("--read-timeout", type=float, default=30.0, metavar="S",
                        help="per-connection request read deadline in seconds; "
                             "slow clients get HTTP 408 (default 30)")
    args = parser.parse_args(argv)

    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=workers,
        drain_timeout=args.drain_timeout,
        job_timeout=args.job_timeout,
        max_retries=args.max_retries,
        read_timeout=args.read_timeout,
    )

    def ready(service) -> None:
        print(f"listening on http://{config.host}:{service.port} "
              f"(workers={workers}, cache={args.cache_dir or 'off'})", flush=True)
        if args.port_file:
            tmp = f"{args.port_file}.tmp"
            with open(tmp, "w") as handle:
                handle.write(str(service.port))
            os.replace(tmp, args.port_file)

    async def serve() -> None:
        loop = asyncio.get_running_loop()
        holder = {}

        def capture(service):
            holder["service"] = service
            ready(service)

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(holder["service"].shutdown()),
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await run_service(config, ready=capture)

    asyncio.run(serve())
    print("service stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
