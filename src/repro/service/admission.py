"""Admission control for the job service: cost quotas, shedding, brownout.

This layer sits between request parsing and the supervised executor in
:mod:`repro.service.server`.  Every submission is priced *before* execution
by the shared width-weighted cost model (:mod:`repro.engine.cost`), and
three defenses are applied in order:

1. **Brownout degradation** — under sustained pressure the server sheds
   *optional* work before rejecting anyone: first ``degraded`` (the
   ``verify`` flag is stripped from incoming specs), then ``cache_only``
   (expensive jobs whose decomposition is not already on disk are refused).
   Both transitions are hysteretic: pressure must sit above the high
   watermark for a hold period to escalate and below the low watermark for
   the same period to step back down, so the state cannot flap.
2. **Load shedding** — when the estimated cost queued behind the executor
   (or the raw queue depth) would cross its watermark, expensive requests
   get a structured HTTP 429 with ``Retry-After``; cheap requests
   (``cost <= cheap_cost``) still admit so light clients keep their
   latency budget through the storm.
3. **Per-client token buckets** — each client (the ``X-Repro-Client``
   header, else the spec's ``client`` field, else ``"default"``) holds a
   bucket refilled in cost units per second.  A job is affordable when the
   bucket holds ``min(cost, burst)`` tokens; charging may drive the
   balance negative (debt), which is what paces a client whose single jobs
   are worth several seconds of refill.

In-flight dedup subscribers bypass shedding and are charged a nominal
cost — attaching to an existing computation adds no engine work, and
punishing it would defeat the service's core invariant.

Everything here is synchronous, owned by the server's single event loop,
and observable: :meth:`AdmissionController.snapshot` feeds the
``admission`` block of ``GET /metrics``.  The controller clock is
injectable for deterministic unit tests.

Tunables come from ``REPRO_ADMISSION_*`` environment variables (see
``docs/TUNABLES.md``) rather than CLI flags: they are operating-point
policy, expected to differ per deployment, and the overload benchmark
(``run_loadgen.py --overload``) arms a deliberately tiny configuration in
the server it launches.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

__all__ = [
    "ADMIT",
    "CACHE_ONLY",
    "AdmissionConfig",
    "AdmissionController",
    "Decision",
    "SHED",
    "THROTTLE",
    "TokenBucket",
    "admission_config_from_env",
]

# Decision actions.
ADMIT = "admit"
THROTTLE = "throttle"  # per-client quota exhausted
SHED = "shed"  # global queue watermark crossed
CACHE_ONLY = "cache_only"  # brownout floor: cold expensive work refused

#: Nominal charge for attaching to an in-flight computation.
DEDUP_COST = 1.0

#: Hard cap on distinct client buckets; beyond it the least-recently-seen
#: bucket is evicted so arbitrary header values cannot grow memory.
MAX_CLIENTS = 1024

_BROWNOUT_STATES = ("normal", "degraded", "cache_only")


def _env_float(name: str, default: float, minimum: float) -> float:
    """A float tunable from the environment — warn-and-default on garbage,
    warn-and-clamp below ``minimum`` (mirrors ``sortkernel._env_int``)."""
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        parsed = float(value)
    except ValueError:
        warnings.warn(
            f"ignoring malformed ${name}={value!r} (expected a number); "
            f"using the default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if parsed < minimum:
        warnings.warn(
            f"${name}={parsed} is below the minimum {minimum}; clamping",
            RuntimeWarning,
            stacklevel=2,
        )
        return minimum
    return parsed


@dataclass(frozen=True)
class AdmissionConfig:
    """Operating point of the admission layer.  Defaults are deliberately
    generous — a single-box development server should never notice the
    layer exists; production deployments tighten them via environment."""

    #: Master switch; ``REPRO_ADMISSION=0`` disables the layer entirely.
    enabled: bool = True
    #: Per-client refill rate, cost units (~ms of engine time) per second.
    rate: float = 2000.0
    #: Per-client bucket capacity; also the affordability ceiling, so a
    #: single job costing more than ``burst`` is still admittable (it
    #: drives the bucket into debt instead of being forever unaffordable).
    burst: float = 20000.0
    #: Global watermark: estimated cost units admitted but not yet settled.
    max_queue_cost: float = 50000.0
    #: Global watermark: admitted-but-unsettled job count.
    max_queue_depth: int = 512
    #: Jobs at or below this cost are "cheap": they are never shed by the
    #: global watermarks (only their own client's quota can stop them).
    cheap_cost: float = 50.0
    #: Brownout engages when pressure (queued cost / max_queue_cost) holds
    #: at or above ``brownout_high`` for ``brownout_hold`` seconds …
    brownout_high: float = 0.75
    #: … and steps back down after the same hold at or below this.
    brownout_low: float = 0.25
    brownout_hold: float = 2.0
    #: Idle client buckets are dropped after this many seconds.
    client_ttl: float = 600.0


def admission_config_from_env() -> AdmissionConfig:
    """Build the admission operating point from ``REPRO_ADMISSION_*``."""
    enabled = os.environ.get("REPRO_ADMISSION", "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )
    return AdmissionConfig(
        enabled=enabled,
        rate=_env_float("REPRO_ADMISSION_RATE", 2000.0, 1.0),
        burst=_env_float("REPRO_ADMISSION_BURST", 20000.0, 1.0),
        max_queue_cost=_env_float("REPRO_ADMISSION_MAX_QUEUE_COST", 50000.0, 1.0),
        max_queue_depth=int(
            _env_float("REPRO_ADMISSION_MAX_QUEUE_DEPTH", 512, 1)
        ),
        cheap_cost=_env_float("REPRO_ADMISSION_CHEAP_COST", 50.0, 0.0),
        brownout_high=_env_float("REPRO_ADMISSION_BROWNOUT_HIGH", 0.75, 0.01),
        brownout_low=_env_float("REPRO_ADMISSION_BROWNOUT_LOW", 0.25, 0.0),
        brownout_hold=_env_float("REPRO_ADMISSION_BROWNOUT_HOLD", 2.0, 0.0),
        client_ttl=_env_float("REPRO_ADMISSION_CLIENT_TTL", 600.0, 1.0),
    )


class TokenBucket:
    """Cost-unit token bucket with debt.

    Affordability is gated on ``min(cost, burst)`` so one job worth more
    than a full bucket can still run — charging it simply drives the
    balance negative, and the client waits out the debt before its next
    admission.  Refill is lazy (computed from elapsed time on each use).
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def try_charge(self, cost: float, now: float) -> float:
        """Charge ``cost`` if affordable; returns 0.0 on success, else the
        seconds until the charge would become affordable (never charges
        in that case)."""
        self._refill(now)
        need = min(cost, self.burst)
        if self.tokens >= need:
            self.tokens -= cost
            return 0.0
        return (need - self.tokens) / self.rate


@dataclass
class Decision:
    """Outcome of one admission decision, consumed by the server."""

    action: str  # ADMIT | THROTTLE | SHED | CACHE_ONLY
    client: str
    cost: float
    cost_class: str  # "cheap" | "standard" | "heavy"
    dedup: bool = False
    retry_after: float = 0.0
    brownout: str = "normal"
    registered: bool = field(default=False, compare=False)


class _BrownoutTracker:
    """Hysteretic three-state machine: normal -> degraded -> cache_only.

    Driven by every pressure observation (admissions, settlements and
    metrics scrapes).  Escalates one level after pressure holds at or
    above ``high`` for ``hold`` seconds, de-escalates one level after it
    holds at or below ``low`` for ``hold`` seconds; in the band between
    the watermarks both hold timers reset, which is what prevents
    flapping.
    """

    __slots__ = ("high", "low", "hold", "level", "engaged", "cleared",
                 "_above_since", "_below_since")

    def __init__(self, high: float, low: float, hold: float) -> None:
        self.high = high
        self.low = low
        self.hold = hold
        self.level = 0
        self.engaged = 0  # times brownout left "normal"
        self.cleared = 0  # times brownout returned to "normal"
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None

    @property
    def state(self) -> str:
        return _BROWNOUT_STATES[self.level]

    def observe(self, pressure: float, now: float) -> str:
        if pressure >= self.high:
            self._below_since = None
            if self._above_since is None:
                self._above_since = now
            elif now - self._above_since >= self.hold:
                if self.level < len(_BROWNOUT_STATES) - 1:
                    if self.level == 0:
                        self.engaged += 1
                    self.level += 1
                self._above_since = now  # re-arm for the next escalation
        elif pressure <= self.low:
            self._above_since = None
            if self._below_since is None:
                self._below_since = now
            elif now - self._below_since >= self.hold:
                if self.level > 0:
                    self.level -= 1
                    if self.level == 0:
                        self.cleared += 1
                self._below_since = now
        else:
            self._above_since = None
            self._below_since = None
        return self.state


class AdmissionController:
    """Prices, meters and (when necessary) refuses job submissions.

    The protocol with the server is two-phase so a fault injected between
    the decision and the launch cannot leak queued cost:

    - :meth:`decide` charges the client's bucket and returns a
      :class:`Decision`, but does **not** touch the global queue books;
    - :meth:`register` (called only for admitted jobs, after the
      ``admission.admit`` fault site) adds the job's cost to the queue
      books; :meth:`settle` removes it when the job reaches a terminal
      state.

    Single-threaded by design: every method runs on the server's event
    loop (or under the caller's control in tests).
    """

    def __init__(
        self,
        config: AdmissionConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._last_seen: Dict[str, float] = {}
        self._brownout = _BrownoutTracker(
            config.brownout_high, config.brownout_low, config.brownout_hold
        )
        self.queue_cost = 0.0
        self.queue_depth = 0
        self.queue_cost_by_class: Dict[str, float] = {
            "cheap": 0.0, "standard": 0.0, "heavy": 0.0,
        }
        self.admitted = 0
        self.throttled = 0
        self.shed = 0
        self.cache_only_rejects = 0
        self.degraded_jobs = 0

    # -- pricing -------------------------------------------------------
    def classify(self, cost: float) -> str:
        if cost <= self.config.cheap_cost:
            return "cheap"
        if cost >= self.config.burst / 2.0:
            return "heavy"
        return "standard"

    @property
    def pressure(self) -> float:
        return self.queue_cost / self.config.max_queue_cost

    def brownout_state(self, now: Optional[float] = None) -> str:
        """Current brownout state; observing advances the hold timers, so
        metrics scrapes and new submissions both drive recovery."""
        now = self.clock() if now is None else now
        return self._brownout.observe(self.pressure, now)

    # -- the decision --------------------------------------------------
    def decide(
        self,
        client: str,
        cost: float,
        *,
        cached: bool = False,
        dedup: bool = False,
    ) -> Decision:
        now = self.clock()
        self._evict_idle(now)
        state = self._brownout.observe(self.pressure, now)
        charge = DEDUP_COST if dedup else cost
        cost_class = self.classify(charge)
        cheap = cost_class == "cheap"

        # Brownout floor: cold expensive work is refused outright while in
        # cache_only — the queue is already past saturation, so only jobs
        # that collapse to a disk read (or dedup attach) may pass.
        if state == "cache_only" and not (dedup or cached or cheap):
            self.cache_only_rejects += 1
            return Decision(
                CACHE_ONLY, client, charge, cost_class,
                retry_after=max(self.config.brownout_hold, 1.0),
                brownout=state,
            )

        # Global shedding: dedup attaches add no work and cheap jobs are
        # exempt; everything else must fit under both watermarks.
        if not dedup and not cheap:
            over_cost = self.queue_cost + charge > self.config.max_queue_cost
            over_depth = self.queue_depth >= self.config.max_queue_depth
            if over_cost or over_depth:
                self.shed += 1
                overflow = self.queue_cost + charge - self.config.max_queue_cost
                retry = max(
                    self.config.brownout_hold,
                    overflow / self.config.rate if overflow > 0 else 0.0,
                )
                return Decision(
                    SHED, client, charge, cost_class,
                    retry_after=retry, brownout=state,
                )

        # Per-client quota.
        bucket = self._bucket(client, now)
        wait = bucket.try_charge(charge, now)
        if wait > 0.0:
            self.throttled += 1
            return Decision(
                THROTTLE, client, charge, cost_class,
                retry_after=wait, brownout=state,
            )

        self.admitted += 1
        return Decision(
            ADMIT, client, charge, cost_class, dedup=dedup, brownout=state,
        )

    def register(self, decision: Decision) -> None:
        """Book an admitted job's cost into the global queue accounting.
        Dedup attaches are excluded — their work is already booked under
        the primary submission."""
        if decision.action != ADMIT or decision.dedup or decision.registered:
            return
        decision.registered = True
        self.queue_cost += decision.cost
        self.queue_depth += 1
        self.queue_cost_by_class[decision.cost_class] += decision.cost

    def settle(self, decision: Optional[Decision]) -> None:
        """Release a registered job's cost when it reaches a terminal
        state, and give the brownout tracker a fresh observation so
        recovery does not wait for the next submission."""
        if decision is not None and decision.registered:
            decision.registered = False
            self.queue_cost = max(0.0, self.queue_cost - decision.cost)
            self.queue_depth = max(0, self.queue_depth - 1)
            by_class = self.queue_cost_by_class
            by_class[decision.cost_class] = max(
                0.0, by_class[decision.cost_class] - decision.cost
            )
        self._brownout.observe(self.pressure, self.clock())

    # -- bookkeeping ---------------------------------------------------
    def _bucket(self, client: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            if len(self._buckets) >= MAX_CLIENTS:
                oldest = min(self._last_seen, key=self._last_seen.__getitem__)
                del self._buckets[oldest]
                del self._last_seen[oldest]
            bucket = TokenBucket(self.config.rate, self.config.burst, now)
            self._buckets[client] = bucket
        self._last_seen[client] = now
        return bucket

    def _evict_idle(self, now: float) -> None:
        ttl = self.config.client_ttl
        expired = [c for c, seen in self._last_seen.items() if now - seen > ttl]
        for client in expired:
            del self._buckets[client]
            del self._last_seen[client]

    def snapshot(self) -> Dict[str, object]:
        """The ``admission`` block of ``GET /metrics``."""
        return {
            "enabled": self.config.enabled,
            "admitted": self.admitted,
            "throttled": self.throttled,
            "shed": self.shed,
            "cache_only_rejects": self.cache_only_rejects,
            "degraded_jobs": self.degraded_jobs,
            "queue_cost": round(self.queue_cost, 3),
            "queue_depth": self.queue_depth,
            "queue_cost_by_class": {
                k: round(v, 3) for k, v in self.queue_cost_by_class.items()
            },
            "pressure": round(self.pressure, 4),
            "active_clients": len(self._buckets),
            "brownout": {
                "state": self.brownout_state(),
                "engaged": self._brownout.engaged,
                "cleared": self._brownout.cleared,
            },
        }
