"""Job specifications and the worker body of the decomposition service.

A *job spec* is the JSON document a client POSTs to ``/jobs``.  This module
owns its whole lifecycle below the HTTP layer:

* :func:`parse_job_spec` validates the raw JSON into a :class:`JobSpec`
  (every rejection raises :class:`SpecError` with a structured detail the
  server renders as an HTTP 400);
* ``JobSpec.digest()`` is the canonical in-flight deduplication key: two
  submissions digest equal iff they would run the identical computation
  (same builder + arguments + pipeline configuration + synthesis
  parameters), built on :func:`repro.engine.batch.job_fingerprint` so it
  agrees with the on-disk cache's job index;
* :func:`execute_job` is the pool-worker body: it routes the spec through
  :func:`repro.engine.batch.run_job` (both cache layers) and, for
  ``synthesize`` jobs, on through structuring + technology mapping with a
  :class:`~repro.engine.cache.SynthesisCache`, returning a JSON-ready
  result summary.

Everything here is stdlib + the existing engine; the HTTP server never
imports spec builders and the workers never see a socket.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Mapping, Optional

from .. import faults
from ..benchcircuits import (
    adder_spec,
    comparator_spec,
    counter_spec,
    lod_spec,
    lzd_spec,
    majority_spec,
    three_input_adder_spec,
)
from ..core.decompose import DecompositionOptions
from ..core.structure import decomposition_to_netlist
from ..engine.batch import job_fingerprint, run_job
from ..engine.cache import (
    SynthesisCache,
    decomposition_digest,
    deserialize_decomposition,
    library_fingerprint,
    synthesis_cache_key,
)
from ..engine.pipeline import Pipeline
from ..synth import default_library, synthesize_netlist

#: Circuits a job may name, mirroring ``benchmarks/run_bench.py``.  The
#: builders are module-level callables, so they are picklable and their
#: qualified names key the cache's job index.
CIRCUITS: Dict[str, Callable] = {
    "adder": adder_spec,
    "comparator": comparator_spec,
    "counter": counter_spec,
    "lod": lod_spec,
    "lzd": lzd_spec,
    "majority": majority_spec,
    "three_input_adder": three_input_adder_spec,
}

KINDS = ("decompose", "synthesize")
OBJECTIVES = ("delay", "area", "balanced")

#: Hard width ceiling: the 15/16-bit Table 1 circuits are the current stress
#: floor; anything wider is minutes of work a single POST should not be able
#: to demand from a shared server.
MAX_WIDTH = 20

#: Ceiling on the artificial per-job delay (a load-testing hook, see below).
MAX_DELAY_MS = 10_000

#: Ceiling on a spec's per-job wall-clock timeout override (seconds).
MAX_JOB_TIMEOUT = 600.0

#: Ceiling on a spec's retry-count override.
MAX_JOB_RETRIES = 10

#: Ceiling on an admission client identifier (spec ``client`` field or
#: ``X-Repro-Client`` header); the charset keeps metric keys printable.
MAX_CLIENT_LEN = 64
_CLIENT_RE = re.compile(r"[A-Za-z0-9._-]+")

#: DecompositionOptions fields a spec may set (everything tunable; the
#: block prefix stays fixed so cache records remain interchangeable).
_OPTION_FIELDS = {
    f.name: f.type
    for f in dataclasses.fields(DecompositionOptions)
    if f.name != "block_prefix"
}


class SpecError(ValueError):
    """A rejected job spec; ``detail`` is the structured 400 payload."""

    def __init__(self, message: str, field_name: str | None = None) -> None:
        super().__init__(message)
        self.detail = {"message": message}
        if field_name is not None:
            self.detail["field"] = field_name


def _require(condition: bool, message: str, field_name: str | None = None) -> None:
    if not condition:
        raise SpecError(message, field_name)


@dataclass(frozen=True)
class JobSpec:
    """A validated, normalised job specification."""

    kind: str
    circuit: str
    width: int
    options: DecompositionOptions
    objective: str = "balanced"
    verify: bool = False
    delay_ms: int = 0
    #: Per-job wall-clock timeout override (seconds); ``None`` uses the
    #: server default.  Scheduling policy, so deliberately NOT part of the
    #: dedup digest: the result of a computation does not depend on it.
    timeout: Optional[float] = None
    #: Per-job retry-budget override for attempts lost to worker crashes;
    #: ``None`` uses the server default.  Also excluded from the digest.
    max_retries: Optional[int] = None
    #: Admission identity (quota accounting); the ``X-Repro-Client`` header
    #: takes precedence over this field.  Pure scheduling policy — excluded
    #: from the digest, so two clients asking for the same computation
    #: still deduplicate onto one execution.
    client: Optional[str] = None

    def payload(self) -> dict:
        """Canonical JSON-ready form (worker payload + digest input)."""
        payload = {
            "kind": self.kind,
            "circuit": self.circuit,
            "width": self.width,
            "options": dataclasses.asdict(self.options),
            "objective": self.objective,
            "verify": self.verify,
            "delay_ms": self.delay_ms,
        }
        if self.timeout is not None:
            payload["timeout"] = self.timeout
        if self.max_retries is not None:
            payload["max_retries"] = self.max_retries
        if self.client is not None:
            payload["client"] = self.client
        return payload

    def job_key(self) -> str:
        """The engine-level job fingerprint (builder + args + pipeline).

        This is exactly the key the worker's ``run_job`` uses for the
        on-disk job index, which lets the admission layer ask "is this
        decomposition already on disk?" before pricing a submission.
        """
        return job_fingerprint(
            CIRCUITS[self.circuit],
            (self.width,),
            {},
            Pipeline.from_options(self.options).config_key(),
        )

    def digest(self) -> str:
        """The in-flight deduplication key.

        Builds on the engine's job fingerprint (builder identity + arguments
        + exact pipeline configuration), then folds in the service-level
        parameters that change what a job *returns* (kind, synthesis
        objective, verify flag, test delay) — two specs digest equal iff
        serving one result satisfies both submissions.
        """
        base = self.job_key()
        extra = json.dumps(
            {
                "kind": self.kind,
                "objective": self.objective if self.kind == "synthesize" else None,
                "verify": self.verify,
                "delay_ms": self.delay_ms,
            },
            sort_keys=True,
        )
        return hashlib.sha256(f"{base}|{extra}".encode("utf-8")).hexdigest()


def parse_job_spec(data: object) -> JobSpec:
    """Validate a decoded JSON document into a :class:`JobSpec`.

    Raises :class:`SpecError` (→ HTTP 400) on any malformed field; unknown
    top-level keys and unknown option names are rejected rather than
    ignored, so typos never silently run a different computation.
    """
    _require(isinstance(data, dict), "job spec must be a JSON object")
    known = {"kind", "circuit", "width", "options", "objective", "verify",
             "delay_ms", "timeout", "max_retries", "client"}
    for key in data:
        _require(key in known, f"unknown field {key!r}", key)

    kind = data.get("kind", "decompose")
    _require(kind in KINDS, f"kind must be one of {list(KINDS)}", "kind")

    circuit = data.get("circuit")
    _require(
        isinstance(circuit, str) and circuit in CIRCUITS,
        f"circuit must be one of {sorted(CIRCUITS)}",
        "circuit",
    )

    width = data.get("width")
    _require(
        isinstance(width, int) and not isinstance(width, bool)
        and 1 <= width <= MAX_WIDTH,
        f"width must be an integer in [1, {MAX_WIDTH}]",
        "width",
    )

    raw_options = data.get("options", {})
    _require(isinstance(raw_options, dict), "options must be a JSON object", "options")
    for name, value in raw_options.items():
        _require(name in _OPTION_FIELDS, f"unknown option {name!r}", "options")
        expected = _OPTION_FIELDS[name]
        if expected == "bool" or expected is bool:
            _require(isinstance(value, bool), f"option {name!r} must be a boolean", "options")
        else:
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 1,
                f"option {name!r} must be a positive integer",
                "options",
            )
    options = DecompositionOptions(**raw_options)

    objective = data.get("objective", "balanced")
    _require(objective in OBJECTIVES, f"objective must be one of {list(OBJECTIVES)}", "objective")

    verify = data.get("verify", False)
    _require(isinstance(verify, bool), "verify must be a boolean", "verify")

    delay_ms = data.get("delay_ms", 0)
    _require(
        isinstance(delay_ms, int) and not isinstance(delay_ms, bool)
        and 0 <= delay_ms <= MAX_DELAY_MS,
        f"delay_ms must be an integer in [0, {MAX_DELAY_MS}]",
        "delay_ms",
    )

    timeout = data.get("timeout")
    if timeout is not None:
        _require(
            isinstance(timeout, (int, float)) and not isinstance(timeout, bool)
            and 0 < timeout <= MAX_JOB_TIMEOUT,
            f"timeout must be a number in (0, {MAX_JOB_TIMEOUT}] seconds",
            "timeout",
        )
        timeout = float(timeout)

    max_retries = data.get("max_retries")
    if max_retries is not None:
        _require(
            isinstance(max_retries, int) and not isinstance(max_retries, bool)
            and 0 <= max_retries <= MAX_JOB_RETRIES,
            f"max_retries must be an integer in [0, {MAX_JOB_RETRIES}]",
            "max_retries",
        )

    client = data.get("client")
    if client is not None:
        _require(
            isinstance(client, str) and 1 <= len(client) <= MAX_CLIENT_LEN
            and _CLIENT_RE.fullmatch(client) is not None,
            "client must be 1-"
            f"{MAX_CLIENT_LEN} characters from [A-Za-z0-9._-]",
            "client",
        )

    return JobSpec(
        kind=kind,
        circuit=circuit,
        width=width,
        options=options,
        objective=objective,
        verify=verify,
        delay_ms=delay_ms,
        timeout=timeout,
        max_retries=max_retries,
        client=client,
    )


def spec_from_payload(payload: Mapping) -> JobSpec:
    """Rebuild a :class:`JobSpec` from ``JobSpec.payload()`` (worker side)."""
    return JobSpec(
        kind=payload["kind"],
        circuit=payload["circuit"],
        width=payload["width"],
        options=DecompositionOptions(**payload["options"]),
        objective=payload["objective"],
        verify=payload["verify"],
        delay_ms=payload["delay_ms"],
        timeout=payload.get("timeout"),
        max_retries=payload.get("max_retries"),
        client=payload.get("client"),
    )


# ----------------------------------------------------------------------
# Worker body
# ----------------------------------------------------------------------
def execute_job(payload: Mapping, cache_dir: Optional[str]) -> dict:
    """Run one job spec end to end; the (picklable) pool-worker body.

    ``delay_ms`` sleeps *before* the engine runs — it exists so tests and
    the load generator can hold a job in flight deterministically and watch
    the thundering-herd deduplication, and it is part of the job digest so
    it never blurs distinct submissions together.

    The returned dict is JSON-ready: decomposition metrics (plus synthesis
    area/delay for ``synthesize`` jobs), the cache coordinates, and whether
    the decomposition was a disk hit.
    """
    spec = spec_from_payload(payload)
    if spec.delay_ms:
        time.sleep(spec.delay_ms / 1000.0)
    # Named fault site for the chaos harness: REPRO_FAULT_SPEC can kill or
    # delay this worker at the start of the job body, filtered by
    # "<circuit>-<width>".  Inert (one env lookup) when unarmed.
    faults.hit("worker.job", tag=f"{spec.circuit}-{spec.width}")
    start = time.perf_counter()
    outcome = run_job(
        CIRCUITS[spec.circuit],
        (spec.width,),
        options=spec.options,
        cache_dir=cache_dir,
    )
    decomposition = deserialize_decomposition(outcome.record)
    result: dict = {
        "kind": spec.kind,
        "circuit": spec.circuit,
        "width": spec.width,
        "decomposition_cached": outcome.cache_hit,
        "engine_seconds": round(outcome.seconds, 4),
        "blocks": len(decomposition.blocks),
        "levels": decomposition.num_levels,
        "block_literals": decomposition.total_block_literals(),
        "output_literals": sum(
            expr.literal_count for expr in decomposition.outputs.values()
        ),
        "content_key": outcome.content_key,
    }
    if spec.verify:
        result["verified"] = bool(decomposition.verify())
    if spec.kind == "synthesize":
        library = default_library()
        synthesis_cache = (
            SynthesisCache(f"{cache_dir}/synth") if cache_dir else None
        )
        key = None
        cached = None
        if synthesis_cache is not None:
            key = synthesis_cache_key(
                decomposition_digest(decomposition),
                library_fingerprint(library),
                {"flow": "service", "objective": spec.objective},
            )
            cached = synthesis_cache.load(key)
        if cached is not None:
            result["synthesis_cached"] = True
            result["area"] = round(float(cached["area"]), 1)
            result["delay"] = round(float(cached["delay"]), 3)
            result["cells"] = int(cached["cells"])
        else:
            netlist = decomposition_to_netlist(
                decomposition, library=library, objective=spec.objective
            )
            synthesis = synthesize_netlist(netlist, library)
            if synthesis_cache is not None:
                synthesis_cache.store(key, {
                    "name": spec.circuit,
                    "area": synthesis.area,
                    "delay": synthesis.delay,
                    "cells": synthesis.num_cells,
                    "depth": synthesis.depth,
                })
            result["synthesis_cached"] = False
            result["area"] = round(synthesis.area, 1)
            result["delay"] = round(synthesis.delay, 3)
            result["cells"] = synthesis.num_cells
    result["seconds"] = round(time.perf_counter() - start, 4)
    return result


# ----------------------------------------------------------------------
# The server-side job record
# ----------------------------------------------------------------------
class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


def new_job_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass
class Job:
    """One submission's server-side record (dedup subscribers get their own)."""

    id: str
    spec: JobSpec
    digest: str
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    deduplicated: bool = False
    primary_id: Optional[str] = None
    result: Optional[dict] = None
    error: Optional[str] = None
    #: Structured failure description (``type`` + context) alongside the
    #: human-readable ``error`` string — what clients branch on.
    error_detail: Optional[dict] = None
    #: Execution attempts the computation behind this job consumed
    #: (0 while queued/deduplicated, >1 after worker-death retries).
    attempts: int = 0
    #: True when brownout degradation stripped optional work (the
    #: ``verify`` flag) from the submitted spec before execution.
    degraded: bool = False

    def finish(self, result: Optional[dict], error: Optional[str],
               error_detail: Optional[dict] = None) -> None:
        self.result = result
        self.error = error
        self.error_detail = error_detail if error is not None else None
        self.state = JobState.FAILED if error is not None else JobState.DONE
        self.finished_at = time.time()

    @property
    def latency_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def status(self) -> dict:
        """The ``GET /jobs/<id>`` JSON body."""
        body: dict = {
            "id": self.id,
            "state": self.state.value,
            "digest": self.digest,
            "spec": self.spec.payload(),
            "submitted_at": self.submitted_at,
            "deduplicated": self.deduplicated,
        }
        if self.primary_id is not None:
            body["primary_id"] = self.primary_id
        if self.finished_at is not None:
            body["finished_at"] = self.finished_at
            body["latency_seconds"] = round(self.latency_seconds, 4)
        if self.attempts:
            body["attempts"] = self.attempts
        if self.degraded:
            body["degraded"] = True
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        if self.error_detail is not None:
            body["error_detail"] = self.error_detail
        return body
