"""The asyncio HTTP front-end of decomposition-as-a-service.

One event loop owns all bookkeeping (job table, in-flight map, metrics);
decompositions run in a ``multiprocessing`` fork pool (or an in-process
worker thread with ``workers=0``) and come back as JSON-ready summaries.
The HTTP layer is deliberately ``http.server``-grade: a hand-rolled
HTTP/1.1 request parser over ``asyncio.start_server``, stdlib only, one
connection per request (``Connection: close``).

Endpoints
---------
* ``POST /jobs`` — submit a job spec (JSON body); ``?wait=1`` blocks until
  the job is terminal.  Identical in-flight submissions (equal canonical
  digests) attach to the running computation instead of spawning another.
* ``GET /jobs`` — brief listing of known jobs.
* ``GET /jobs/<id>`` — job status; ``?wait=1`` long-polls until terminal.
* ``GET /jobs/<id>/events`` — NDJSON stream of status snapshots (one line
  on subscribe, one per state change, final line on completion).
* ``GET /healthz`` — liveness + drain state.
* ``GET /metrics`` — operating-point counters (latency percentiles, cache
  hit rate, dedup rate, queue depth); see :mod:`repro.service.metrics`.
* ``POST /shutdown`` — graceful shutdown: stop accepting jobs, drain the
  in-flight queue, close the fork pool, stop the listener.

The module also provides :func:`run_service` (asyncio entry point used by
``python -m repro.service``) and :class:`ServiceThread` (an in-process
server on a background thread, used by the tests and the load generator).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..parallel import pool_context
from .jobs import Job, JobState, SpecError, new_job_id, parse_job_spec, execute_job
from .metrics import ServiceMetrics

#: Largest accepted request body; job specs are a few hundred bytes.
MAX_BODY_BYTES = 64 * 1024

#: Longest a single ``?wait=1`` request may block.
MAX_WAIT_SECONDS = 600.0

#: Completed jobs kept in the table (oldest evicted first).
JOB_TABLE_LIMIT = 50_000


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = 8321
    cache_dir: Optional[str] = None
    #: >0: fork-pool worker processes; 0: one in-process worker thread
    #: (no fork — the fallback for restricted environments and tests).
    workers: int = 1
    #: Upper bound on waiting for in-flight jobs during graceful shutdown.
    drain_timeout: float = 120.0


class _InFlight:
    """One running computation plus every submission subscribed to it."""

    __slots__ = ("primary", "subscribers", "future")

    def __init__(self, primary: Job, future: "asyncio.Future") -> None:
        self.primary = primary
        self.subscribers: List[Job] = []
        self.future = future


class HttpError(Exception):
    def __init__(self, status: int, message: str, detail: Optional[dict] = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = {"error": detail or {"message": message}}


class DecompositionService:
    """Event-loop-owned service state + request handlers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._events: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, _InFlight] = {}
        self._draining = False
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        if self.config.workers > 0:
            self._pool = pool_context().Pool(self.config.workers)
        else:
            # One worker thread keeps execution strictly sequential and
            # fork-free; numpy releases the GIL, so the loop stays live.
            import concurrent.futures

            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service-worker"
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Drain in-flight jobs, close the pool, stop the listener."""
        if self._draining:
            return
        self._draining = True
        pending = [entry.future for entry in self._inflight.values()]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_timeout)
        pool, self._pool = self._pool, None
        if pool is not None:
            if hasattr(pool, "close"):  # multiprocessing.Pool
                pool.close()
                await self._loop.run_in_executor(None, pool.join)
            else:  # ThreadPoolExecutor
                await self._loop.run_in_executor(None, pool.shutdown)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Job bookkeeping
    # ------------------------------------------------------------------
    def _register_job(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._events[job.id] = asyncio.Event()
        while len(self.jobs) > JOB_TABLE_LIMIT:
            old_id, old_job = next(iter(self.jobs.items()))
            if old_job.state in (JobState.DONE, JobState.FAILED):
                del self.jobs[old_id]
                self._events.pop(old_id, None)
            else:
                break

    def _finish_job(self, job: Job, result: Optional[dict], error: Optional[str]) -> None:
        job.finish(result, error)
        self.metrics.record_completion(job.latency_seconds, failed=error is not None)
        event = self._events.get(job.id)
        if event is not None:
            event.set()

    def _submit_to_pool(self, payload: dict) -> "asyncio.Future":
        """Hand a job payload to the execution backend; returns a future."""
        loop = self._loop
        if hasattr(self._pool, "apply_async"):  # multiprocessing.Pool
            future: asyncio.Future = loop.create_future()

            def _done(result, _future=future):
                loop.call_soon_threadsafe(
                    lambda: _future.done() or _future.set_result(result)
                )

            def _fail(exc, _future=future):
                loop.call_soon_threadsafe(
                    lambda: _future.done() or _future.set_exception(exc)
                )

            self._pool.apply_async(
                execute_job,
                (payload, self.config.cache_dir),
                callback=_done,
                error_callback=_fail,
            )
            return future
        return asyncio.ensure_future(
            loop.run_in_executor(self._pool, execute_job, payload, self.config.cache_dir)
        )

    def submit(self, job: Job) -> None:
        """Route a validated job: attach to an in-flight twin or execute."""
        self.metrics.jobs_submitted += 1
        self._register_job(job)
        entry = self._inflight.get(job.digest)
        if entry is not None:
            job.deduplicated = True
            job.primary_id = entry.primary.id
            job.state = JobState.RUNNING
            entry.subscribers.append(job)
            self.metrics.dedup_inflight_hits += 1
            return
        job.state = JobState.RUNNING
        future = self._submit_to_pool(job.spec.payload())
        entry = _InFlight(job, future)
        self._inflight[job.digest] = entry
        self.metrics.queue_depth += 1
        self.metrics.inflight_unique = len(self._inflight)
        future.add_done_callback(lambda fut: self._on_job_done(job.digest, fut))

    def _on_job_done(self, digest: str, future: "asyncio.Future") -> None:
        entry = self._inflight.pop(digest, None)
        self.metrics.queue_depth = max(0, self.metrics.queue_depth - 1)
        self.metrics.inflight_unique = len(self._inflight)
        if entry is None:  # pragma: no cover - defensive
            return
        error: Optional[str] = None
        result: Optional[dict] = None
        try:
            result = future.result()
        except Exception as exc:  # worker raised; every subscriber fails too
            error = f"{type(exc).__name__}: {exc}"
        if error is None and isinstance(result, dict):
            self.metrics.record_outcome(bool(result.get("decomposition_cached")))
        for job in (entry.primary, *entry.subscribers):
            self._finish_job(job, result, error)

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except HttpError as exc:
                await self._respond(writer, exc.status, exc.body)
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return
            try:
                await self._route(writer, method, path, query, body)
            except HttpError as exc:
                await self._respond(writer, exc.status, exc.body)
            except ConnectionError:
                pass
            except Exception as exc:  # never leak a traceback as a hung socket
                await self._respond(
                    writer, 500,
                    {"error": {"message": f"internal error: {type(exc).__name__}: {exc}"}},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, dict, bytes]:
        request_line = await reader.readline()
        if not request_line.strip():
            raise ValueError("empty request")
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return method.upper(), parsed.path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: dict, reason: str = "") -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        reason = reason or {200: "OK", 202: "Accepted", 400: "Bad Request",
                            404: "Not Found", 405: "Method Not Allowed",
                            413: "Payload Too Large", 500: "Internal Server Error",
                            503: "Service Unavailable"}.get(status, "")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload
        )
        await writer.drain()

    async def _route(self, writer, method: str, path: str, query: dict,
                     body: bytes) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {
                "status": "draining" if self._draining else "ok",
                "uptime_seconds": round(time.time() - self.metrics.started_at, 3),
                "workers": self.config.workers,
                "inflight": len(self._inflight),
            })
            return
        if path == "/metrics" and method == "GET":
            await self._respond(writer, 200, self.metrics.snapshot())
            return
        if path == "/jobs" and method == "POST":
            await self._handle_submit(writer, query, body)
            return
        if path == "/jobs" and method == "GET":
            brief = [
                {"id": job.id, "state": job.state.value, "digest": job.digest,
                 "deduplicated": job.deduplicated}
                for job in self.jobs.values()
            ]
            await self._respond(writer, 200, {"count": len(brief), "jobs": brief})
            return
        if path == "/shutdown" and method == "POST":
            inflight = len(self._inflight)
            await self._respond(writer, 202, {"status": "draining", "inflight": inflight})
            asyncio.ensure_future(self.shutdown())
            return
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            job = self.jobs.get(parts[0])
            if job is None:
                raise HttpError(404, f"no such job: {parts[0]}")
            if len(parts) == 1 and method == "GET":
                await self._handle_status(writer, job, query)
                return
            if len(parts) == 2 and parts[1] == "events" and method == "GET":
                await self._handle_events(writer, job)
                return
        raise HttpError(404 if method in ("GET", "POST") else 405,
                        f"no route for {method} {path}")

    async def _handle_submit(self, writer, query: dict, body: bytes) -> None:
        if self._draining:
            raise HttpError(503, "server is draining; not accepting jobs")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.jobs_rejected += 1
            raise HttpError(400, "bad json", {"message": f"request body is not valid JSON: {exc}"})
        try:
            spec = parse_job_spec(data)
        except SpecError as exc:
            self.metrics.jobs_rejected += 1
            raise HttpError(400, "bad spec", exc.detail)
        job = Job(id=new_job_id(), spec=spec, digest=spec.digest())
        self.submit(job)
        if _truthy(query.get("wait")):
            await self._await_job(job, query)
            await self._respond(writer, 200, job.status())
            return
        status = job.status()
        status["status_url"] = f"/jobs/{job.id}"
        await self._respond(writer, 202, status)

    async def _await_job(self, job: Job, query: dict) -> bool:
        """Wait until ``job`` is terminal; returns False on timeout."""
        timeout = min(MAX_WAIT_SECONDS, _float_param(query, "timeout", 60.0))
        event = self._events.get(job.id)
        if event is None or job.state in (JobState.DONE, JobState.FAILED):
            return True
        try:
            await asyncio.wait_for(event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _handle_status(self, writer, job: Job, query: dict) -> None:
        timed_out = False
        if _truthy(query.get("wait")):
            timed_out = not await self._await_job(job, query)
        status = job.status()
        if timed_out:
            status["timed_out"] = True
        await self._respond(writer, 200, status)

    async def _handle_events(self, writer, job: Job) -> None:
        """NDJSON status stream: one snapshot now, one when terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write((json.dumps(job.status(), sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()
        if job.state not in (JobState.DONE, JobState.FAILED):
            event = self._events.get(job.id)
            if event is not None:
                try:
                    await asyncio.wait_for(event.wait(), MAX_WAIT_SECONDS)
                except asyncio.TimeoutError:
                    pass
            writer.write(
                (json.dumps(job.status(), sort_keys=True) + "\n").encode("utf-8")
            )
            await writer.drain()


def _truthy(value: Optional[str]) -> bool:
    return value is not None and value.lower() not in ("", "0", "false", "no")


def _float_param(query: dict, name: str, default: float) -> float:
    try:
        return float(query.get(name, default))
    except (TypeError, ValueError):
        return default


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def run_service(config: ServiceConfig, ready=None) -> None:
    """Start a service and block until it is shut down.

    ``ready(service)`` is invoked once the listener is bound (the CLI uses
    it to print/record the actual port; tests use it to capture the
    service object).
    """
    service = DecompositionService(config)
    await service.start()
    if ready is not None:
        ready(service)
    await service.wait_stopped()


class ServiceThread:
    """An in-process service on a daemon thread (tests, load generator).

    The thread runs its own event loop; ``stop()`` triggers the same
    graceful shutdown as ``POST /shutdown`` and joins the thread.
    """

    def __init__(self, **config_kwargs) -> None:
        config_kwargs.setdefault("port", 0)
        self.config = ServiceConfig(**config_kwargs)
        self.service: Optional[DecompositionService] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service thread did not start within 60 s")
        if self._error is not None:
            raise RuntimeError(f"service thread failed to start: {self._error}")

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in __init__
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.service = DecompositionService(self.config)
        await self.service.start()
        self.port = self.service.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service.wait_stopped()

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread.is_alive() and self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.service.shutdown())
            )
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
