"""The asyncio HTTP front-end of decomposition-as-a-service.

One event loop owns all bookkeeping (job table, in-flight map, metrics);
decompositions run in a forked :class:`~concurrent.futures.ProcessPoolExecutor`
(or an in-process worker thread with ``workers=0``) and come back as
JSON-ready summaries.

Execution is *supervised* (see ``docs/RELIABILITY.md``): every job gets a
wall-clock timeout (``JobTimeout`` on expiry); an attempt lost to a hard
worker death (the executor reports ``BrokenProcessPool``) is retried with
exponential backoff + jitter while its dedup subscribers stay attached;
a spec that crashes its worker through the whole retry budget fails with
a structured ``WorkerCrash`` error and is quarantined for a TTL; slow
clients are dropped with a structured HTTP 408.
The HTTP layer is deliberately ``http.server``-grade: a hand-rolled
HTTP/1.1 request parser over ``asyncio.start_server``, stdlib only, one
connection per request (``Connection: close``).

Endpoints
---------
* ``POST /jobs`` — submit a job spec (JSON body); ``?wait=1`` blocks until
  the job is terminal.  Identical in-flight submissions (equal canonical
  digests) attach to the running computation instead of spawning another.
* ``GET /jobs`` — brief listing of known jobs.
* ``GET /jobs/<id>`` — job status; ``?wait=1`` long-polls until terminal.
* ``GET /jobs/<id>/events`` — NDJSON stream of status snapshots (one line
  on subscribe, one per state change, final line on completion).
* ``GET /healthz`` — liveness + drain state.
* ``GET /metrics`` — operating-point counters (latency percentiles, cache
  hit rate, dedup rate, queue depth); see :mod:`repro.service.metrics`.
* ``POST /shutdown`` — graceful shutdown: stop accepting jobs, drain the
  in-flight queue, close the fork pool, stop the listener.

The module also provides :func:`run_service` (asyncio entry point used by
``python -m repro.service``) and :class:`ServiceThread` (an in-process
server on a background thread, used by the tests and the load generator).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import dataclasses
import json
import math
import random
import re
import threading
import time
import urllib.parse
from collections import OrderedDict
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import faults
from ..engine.cache import DecompositionCache, corrupt_record_count
from ..engine.cost import estimate_cost
from ..parallel import mark_pool_worker, pool_context
from .admission import (
    ADMIT,
    CACHE_ONLY,
    SHED,
    THROTTLE,
    AdmissionConfig,
    AdmissionController,
    Decision,
    admission_config_from_env,
)
from .jobs import (
    MAX_CLIENT_LEN,
    Job,
    JobSpec,
    JobState,
    SpecError,
    new_job_id,
    parse_job_spec,
    execute_job,
)
from .metrics import ServiceMetrics

#: Largest accepted request body; job specs are a few hundred bytes.
MAX_BODY_BYTES = 64 * 1024

#: Longest a single ``?wait=1`` request may block.
MAX_WAIT_SECONDS = 600.0

#: Completed jobs kept in the table (oldest evicted first).
JOB_TABLE_LIMIT = 50_000


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = 8321
    cache_dir: Optional[str] = None
    #: >0: fork-pool worker processes; 0: one in-process worker thread
    #: (no fork — the fallback for restricted environments and tests).
    workers: int = 1
    #: Upper bound on waiting for in-flight jobs during graceful shutdown.
    drain_timeout: float = 120.0
    #: Default per-job wall-clock limit (seconds); a spec's ``timeout``
    #: field overrides it.  A job past its limit fails with a structured
    #: ``JobTimeout`` error (the worker slot drains when the task ends).
    job_timeout: float = 300.0
    #: Default retry budget for attempts lost to a worker crash; a spec's
    #: ``max_retries`` field overrides it.
    max_retries: int = 2
    #: Exponential-backoff base delay between crash retries (seconds);
    #: attempt n waits ~``base * 2**(n-1)`` with +-50% jitter.
    retry_base_delay: float = 0.1
    #: Ceiling on any single crash-retry backoff delay (seconds).
    retry_max_delay: float = 5.0
    #: How long a digest that exhausted its crash retries keeps failing
    #: fast (seconds) before a fresh submission may try again.
    quarantine_ttl: float = 300.0
    #: Per-connection limit on reading the request line + headers + body
    #: (seconds); a slow or stalled client gets a structured HTTP 408.
    read_timeout: float = 30.0
    #: Admission-control operating point (quotas, shedding watermarks,
    #: brownout).  ``None`` reads ``REPRO_ADMISSION_*`` from the
    #: environment at service construction; tests pass an explicit config.
    admission: Optional[AdmissionConfig] = None


class _InFlight:
    """One running computation plus every submission subscribed to it.

    The entry survives worker crashes: ``future`` is replaced on each retry
    attempt while the subscriber list (thundering-herd dedup) is preserved,
    so every submission attached to a crashed computation is served by the
    retry that finally lands.
    """

    __slots__ = ("primary", "subscribers", "future", "attempts",
                 "max_retries", "timeout", "timeout_handle", "settled",
                 "admission")

    def __init__(self, primary: Job, timeout: float, max_retries: int,
                 admission: Optional[Decision] = None) -> None:
        self.primary = primary
        self.subscribers: List[Job] = []
        self.future: Optional["asyncio.Future"] = None
        self.attempts = 0
        self.max_retries = max_retries
        self.timeout = timeout
        self.timeout_handle: Optional[asyncio.TimerHandle] = None
        self.settled = False
        #: Admission decision whose queued cost is released on settle.
        self.admission = admission


class HttpError(Exception):
    def __init__(self, status: int, message: str, detail: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.body = {"error": detail or {"message": message}}
        #: Extra response headers (e.g. ``Retry-After`` on a 429).
        self.headers = headers


class DecompositionService:
    """Event-loop-owned service state + request handlers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(
            config.admission if config.admission is not None
            else admission_config_from_env()
        )
        #: Cache handle for pre-admission "already on disk?" probes; opened
        #: lazily so a cache-less service never creates a directory.
        self._admission_cache: Optional[DecompositionCache] = None
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._events: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, _InFlight] = {}
        #: digest -> quarantine expiry (time.monotonic()): specs that
        #: exhausted their crash retries fail fast until the TTL passes.
        self._quarantine: Dict[str, float] = {}
        self._draining = False
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _make_pool(self):
        if self.config.workers > 0:
            # ProcessPoolExecutor rather than multiprocessing.Pool: a worker
            # that dies hard fails every pending future with
            # BrokenProcessPool instead of silently losing its task — the
            # signal the retry machinery is built on.
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=pool_context(),
                initializer=mark_pool_worker,
            )
        # One worker thread keeps execution strictly sequential and
        # fork-free; numpy releases the GIL, so the loop stays live.
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-worker"
        )

    def _rebuild_pool(self) -> None:
        """Replace a crash-broken process pool with a fresh one.

        One worker death breaks the whole executor (every pending future
        fails), so several callbacks may request a rebuild for the same
        death — only the first finds the pool actually broken.
        """
        pool = self._pool
        if pool is None or self._draining:
            return
        if not isinstance(pool, concurrent.futures.ProcessPoolExecutor):
            return
        if not getattr(pool, "_broken", True):
            return  # already replaced by an earlier callback
        self._pool = self._make_pool()
        pool.shutdown(wait=False)

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._pool = self._make_pool()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Drain in-flight jobs, close the pool, stop the listener."""
        if self._draining:
            return
        self._draining = True
        pending = [
            entry.future for entry in self._inflight.values()
            if entry.future is not None and not entry.future.done()
        ]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_timeout)
        # Settle anything still open (timed out the drain, or waiting on a
        # retry backoff) so no subscriber is left hanging forever.
        for entry in list(self._inflight.values()):
            self._settle(
                entry, None, "ServiceStopping: server shut down before the job finished",
                {"type": "ServiceStopping"},
            )
        pool, self._pool = self._pool, None
        if pool is not None:
            await self._loop.run_in_executor(None, pool.shutdown)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Job bookkeeping
    # ------------------------------------------------------------------
    def _register_job(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._events[job.id] = asyncio.Event()
        while len(self.jobs) > JOB_TABLE_LIMIT:
            old_id, old_job = next(iter(self.jobs.items()))
            if old_job.state in (JobState.DONE, JobState.FAILED):
                del self.jobs[old_id]
                self._events.pop(old_id, None)
            else:
                break

    def _finish_job(self, job: Job, result: Optional[dict], error: Optional[str],
                    error_detail: Optional[dict] = None) -> None:
        job.finish(result, error, error_detail)
        self.metrics.record_completion(job.latency_seconds, failed=error is not None)
        event = self._events.get(job.id)
        if event is not None:
            event.set()

    def _submit_to_pool(self, payload: dict) -> "asyncio.Future":
        """Hand a job payload to the execution backend; returns a future."""
        cf_future = self._pool.submit(execute_job, payload, self.config.cache_dir)
        return asyncio.wrap_future(cf_future, loop=self._loop)

    def submit(self, job: Job, decision: Optional[Decision] = None) -> None:
        """Route a validated job: attach to an in-flight twin or execute.

        Quarantined digests (specs that crashed their worker through the
        whole retry budget) fail fast with a structured error until their
        TTL expires — one poisoned spec cannot grind the pool down forever.

        ``decision`` is the admission decision that let this job in; its
        registered queue cost is released when the job settles (or right
        here, for paths that never reach the executor).
        """
        self.metrics.jobs_submitted += 1
        self._register_job(job)
        expiry = self._quarantine.get(job.digest)
        if expiry is not None:
            if time.monotonic() < expiry:
                self._finish_job(
                    job, None,
                    "Quarantined: this spec repeatedly crashed its worker; "
                    "rejected until the quarantine expires",
                    {"type": "Quarantined",
                     "retry_after_seconds": round(expiry - time.monotonic(), 3)},
                )
                self.admission.settle(decision)
                return
            del self._quarantine[job.digest]
        entry = self._inflight.get(job.digest)
        if entry is not None:
            job.deduplicated = True
            job.primary_id = entry.primary.id
            job.state = JobState.RUNNING
            entry.subscribers.append(job)
            self.metrics.dedup_inflight_hits += 1
            self.admission.settle(decision)  # dedup registers no queue cost
            return
        job.state = JobState.RUNNING
        spec = job.spec
        entry = _InFlight(
            job,
            timeout=spec.timeout if spec.timeout is not None else self.config.job_timeout,
            max_retries=(spec.max_retries if spec.max_retries is not None
                         else self.config.max_retries),
            admission=decision,
        )
        self._inflight[job.digest] = entry
        self.metrics.queue_depth += 1
        self.metrics.inflight_unique = len(self._inflight)
        self._launch(entry)

    # ------------------------------------------------------------------
    # Supervision: attempts, timeouts, crash retries, quarantine
    # ------------------------------------------------------------------
    def _launch(self, entry: _InFlight) -> None:
        """Start (or restart) the computation behind an in-flight entry."""
        if entry.settled:
            return
        if self._pool is None:
            self._settle(
                entry, None, "ServiceStopping: server shut down before the job ran",
                {"type": "ServiceStopping"},
            )
            return
        entry.attempts += 1
        attempt = entry.attempts
        try:
            future = self._submit_to_pool(entry.primary.spec.payload())
        except (BrokenProcessPool, RuntimeError):
            # The pool broke between the death and this (re)launch.
            self._rebuild_pool()
            future = self._submit_to_pool(entry.primary.spec.payload())
        entry.future = future
        if entry.timeout_handle is not None:
            entry.timeout_handle.cancel()
        if entry.timeout:
            entry.timeout_handle = self._loop.call_later(
                entry.timeout, self._on_job_timeout, entry, attempt
            )
        future.add_done_callback(
            lambda fut: self._on_attempt_done(entry, attempt, fut)
        )

    def _settle(self, entry: _InFlight, result: Optional[dict],
                error: Optional[str], error_detail: Optional[dict] = None) -> None:
        """Terminal bookkeeping: finish the primary and every subscriber."""
        if entry.settled:
            return
        entry.settled = True
        if entry.timeout_handle is not None:
            entry.timeout_handle.cancel()
            entry.timeout_handle = None
        self._inflight.pop(entry.primary.digest, None)
        self.metrics.queue_depth = max(0, self.metrics.queue_depth - 1)
        self.metrics.inflight_unique = len(self._inflight)
        entry.primary.attempts = entry.attempts
        self.admission.settle(entry.admission)
        if error is None and isinstance(result, dict):
            self.metrics.record_outcome(bool(result.get("decomposition_cached")))
        for job in (entry.primary, *entry.subscribers):
            self._finish_job(job, result, error, error_detail)

    def _on_attempt_done(self, entry: _InFlight, attempt: int,
                         future: "asyncio.Future") -> None:
        if entry.settled or attempt != entry.attempts:
            return  # stale: the job already timed out or was re-launched
        try:
            result = future.result()
        except asyncio.CancelledError:
            self._settle(entry, None, "Cancelled: execution was cancelled",
                         {"type": "Cancelled", "attempts": entry.attempts})
            return
        except BrokenProcessPool:
            self._on_worker_death(entry)
            return
        except Exception as exc:  # in-band worker exception: every subscriber fails
            self._settle(
                entry, None, f"{type(exc).__name__}: {exc}",
                {"type": type(exc).__name__, "attempts": entry.attempts},
            )
            return
        self._settle(entry, result, None)

    def _on_worker_death(self, entry: _InFlight) -> None:
        """An attempt died with its worker: retry with backoff, or quarantine."""
        self.metrics.worker_deaths += 1
        self._rebuild_pool()
        if self._draining:
            self._settle(
                entry, None, "ServiceStopping: worker died during shutdown drain",
                {"type": "ServiceStopping"},
            )
            return
        if entry.attempts <= entry.max_retries:
            self.metrics.retries += 1
            base = self.config.retry_base_delay * (2 ** (entry.attempts - 1))
            delay = min(self.config.retry_max_delay, base)
            delay *= 0.5 + random.random()  # +-50% jitter breaks retry lockstep
            self._loop.call_later(delay, self._launch, entry)
            return
        self.metrics.quarantined_jobs += 1
        # Sweep expired digests before inserting: without this, a digest
        # that is never resubmitted would sit in the map forever (the only
        # other deletion path is a same-digest resubmission after expiry).
        self._sweep_quarantine()
        self._quarantine[entry.primary.digest] = (
            time.monotonic() + self.config.quarantine_ttl
        )
        self._settle(
            entry, None,
            f"WorkerCrash: worker died on all {entry.attempts} attempts; "
            f"spec quarantined for {self.config.quarantine_ttl:.0f}s",
            {"type": "WorkerCrash", "attempts": entry.attempts,
             "quarantine_seconds": self.config.quarantine_ttl},
        )

    def _on_job_timeout(self, entry: _InFlight, attempt: int) -> None:
        if entry.settled or attempt != entry.attempts:
            return
        self.metrics.timeouts += 1
        # A running process-pool task cannot be cancelled; the stale future
        # is abandoned (its late result is dropped by the attempt check)
        # and the worker slot drains when the task eventually ends.
        if entry.future is not None:
            entry.future.cancel()
        self._settle(
            entry, None,
            f"JobTimeout: job exceeded its {entry.timeout:g}s wall-clock limit",
            {"type": "JobTimeout", "timeout_seconds": entry.timeout,
             "attempts": entry.attempts},
        )

    def _sweep_quarantine(self, now: Optional[float] = None) -> None:
        """Drop every expired quarantine entry (leak fix: expiry used to be
        checked only on a same-digest resubmission)."""
        now = time.monotonic() if now is None else now
        expired = [d for d, expiry in self._quarantine.items() if now >= expiry]
        for digest in expired:
            del self._quarantine[digest]

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                # A slow or stalled client (slowloris, dripped headers,
                # missing body bytes) must not pin a connection handler
                # forever: the whole request read shares one deadline.
                method, path, query, body, headers = await asyncio.wait_for(
                    self._read_request(reader), self.config.read_timeout
                )
            except asyncio.TimeoutError:
                self.metrics.request_timeouts += 1
                await self._respond(writer, 408, {"error": {
                    "type": "RequestTimeout",
                    "message": "request was not received within "
                               f"{self.config.read_timeout:g}s",
                }})
                return
            except HttpError as exc:
                await self._respond(writer, exc.status, exc.body,
                                    extra_headers=exc.headers)
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return
            try:
                await self._route(writer, method, path, query, body, headers)
            except HttpError as exc:
                await self._respond(writer, exc.status, exc.body,
                                    extra_headers=exc.headers)
            except ConnectionError:
                pass
            except Exception as exc:  # never leak a traceback as a hung socket
                await self._respond(
                    writer, 500,
                    {"error": {"message": f"internal error: {type(exc).__name__}: {exc}"}},
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, dict, bytes, Dict[str, str]]:
        request_line = await reader.readline()
        if not request_line.strip():
            raise ValueError("empty request")
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            raise HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return method.upper(), parsed.path, query, body, headers

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: dict, reason: str = "",
                       extra_headers: Optional[Dict[str, str]] = None) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode("utf-8")
        reason = reason or {200: "OK", 202: "Accepted", 400: "Bad Request",
                            404: "Not Found", 405: "Method Not Allowed",
                            408: "Request Timeout", 413: "Payload Too Large",
                            429: "Too Many Requests",
                            500: "Internal Server Error",
                            503: "Service Unavailable"}.get(status, "")
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extras}"
            f"Connection: close\r\n\r\n".encode("latin-1") + payload
        )
        await writer.drain()

    async def _route(self, writer, method: str, path: str, query: dict,
                     body: bytes, headers: Optional[Dict[str, str]] = None
                     ) -> None:
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, {
                "status": "draining" if self._draining else "ok",
                "uptime_seconds": round(time.time() - self.metrics.started_at, 3),
                "workers": self.config.workers,
                "inflight": len(self._inflight),
            })
            return
        if path == "/metrics" and method == "GET":
            # The scrape doubles as a periodic tick: expired quarantine
            # entries are swept and the brownout hold timers advance (via
            # the admission snapshot), so recovery never waits for traffic.
            self._sweep_quarantine()
            snapshot = self.metrics.snapshot(
                admission=self.admission.snapshot(),
                quarantine_size=len(self._quarantine),
            )
            snapshot["cache"]["corrupt_records"] = (
                corrupt_record_count(self.config.cache_dir)
                if self.config.cache_dir else 0
            )
            await self._respond(writer, 200, snapshot)
            return
        if path == "/jobs" and method == "POST":
            await self._handle_submit(writer, query, body, headers or {})
            return
        if path == "/jobs" and method == "GET":
            brief = [
                {"id": job.id, "state": job.state.value, "digest": job.digest,
                 "deduplicated": job.deduplicated}
                for job in self.jobs.values()
            ]
            await self._respond(writer, 200, {"count": len(brief), "jobs": brief})
            return
        if path == "/shutdown" and method == "POST":
            inflight = len(self._inflight)
            await self._respond(writer, 202, {"status": "draining", "inflight": inflight})
            asyncio.ensure_future(self.shutdown())
            return
        if path.startswith("/jobs/"):
            parts = path[len("/jobs/"):].split("/")
            job = self.jobs.get(parts[0])
            if job is None:
                raise HttpError(404, f"no such job: {parts[0]}")
            if len(parts) == 1 and method == "GET":
                await self._handle_status(writer, job, query)
                return
            if len(parts) == 2 and parts[1] == "events" and method == "GET":
                await self._handle_events(writer, job)
                return
        raise HttpError(404 if method in ("GET", "POST") else 405,
                        f"no route for {method} {path}")

    # Admission rejection -> typed ``error_detail`` for client branching.
    _ADMISSION_ERROR_TYPES = {
        THROTTLE: "ClientThrottled",
        SHED: "AdmissionShed",
        CACHE_ONLY: "BrownoutCacheOnly",
    }
    _ADMISSION_ERROR_MESSAGES = {
        THROTTLE: "per-client cost quota exhausted; retry after the bucket refills",
        SHED: "admission queue is past its cost watermark; expensive work is "
              "being shed",
        CACHE_ONLY: "server is in cache-only brownout; only cached, cheap or "
                    "deduplicated work is admitted",
    }

    def _spec_cached(self, spec: JobSpec) -> bool:
        """True when the spec's decomposition is already in the disk store
        (a submission that collapses to a record load, priced accordingly)."""
        if not self.config.cache_dir:
            return False
        if self._admission_cache is None:
            self._admission_cache = DecompositionCache(self.config.cache_dir)
        try:
            return self._admission_cache.load_index(spec.job_key()) is not None
        except Exception:
            return False

    def _admit(self, spec: JobSpec, headers: Dict[str, str]
               ) -> Tuple[JobSpec, Optional[Decision], bool]:
        """Run one submission through admission control.

        Returns the (possibly brownout-degraded) spec, the admission
        decision to settle at job completion, and whether optional work was
        stripped.  Raises a structured 429 :class:`HttpError` (with
        ``Retry-After``) when the submission is refused.
        """
        admission = self.admission
        if not admission.config.enabled:
            return spec, None, False
        client = _client_id(headers, spec)
        # Degrade before digesting: stripping ``verify`` changes the digest,
        # which is exactly what lets a degraded submission dedup against
        # (and be served by) the cheaper computation.
        degraded = False
        if spec.verify and admission.brownout_state() != "normal":
            spec = dataclasses.replace(spec, verify=False)
            degraded = True
        dedup = spec.digest() in self._inflight
        cached = False if dedup else self._spec_cached(spec)
        cost = estimate_cost(
            spec.circuit, spec.width, kind=spec.kind, verify=spec.verify,
            delay_ms=spec.delay_ms, cached=cached,
        )
        decision = admission.decide(client, cost, cached=cached, dedup=dedup)
        tag = f"{client}:{spec.circuit}-{spec.width}"
        if decision.action != ADMIT:
            faults.hit("admission.shed", tag=tag)
            retry_after = max(1, math.ceil(decision.retry_after))
            kind = self._ADMISSION_ERROR_TYPES[decision.action]
            raise HttpError(
                429, self._ADMISSION_ERROR_MESSAGES[decision.action],
                {
                    "type": kind,
                    "message": self._ADMISSION_ERROR_MESSAGES[decision.action],
                    "client": client,
                    "estimated_cost": round(decision.cost, 3),
                    "retry_after_seconds": retry_after,
                    "brownout": decision.brownout,
                },
                headers={"Retry-After": str(retry_after)},
            )
        # The fault site fires *before* the queue books are touched, so an
        # injected crash here can never leak admitted cost.
        faults.hit("admission.admit", tag=tag)
        admission.register(decision)
        if degraded:
            admission.degraded_jobs += 1
        return spec, decision, degraded

    async def _handle_submit(self, writer, query: dict, body: bytes,
                             headers: Dict[str, str]) -> None:
        if self._draining:
            raise HttpError(503, "server is draining; not accepting jobs")
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.jobs_rejected += 1
            raise HttpError(400, "bad json", {"message": f"request body is not valid JSON: {exc}"})
        try:
            spec = parse_job_spec(data)
        except SpecError as exc:
            self.metrics.jobs_rejected += 1
            raise HttpError(400, "bad spec", exc.detail)
        spec, decision, degraded = self._admit(spec, headers)
        job = Job(id=new_job_id(), spec=spec, digest=spec.digest(),
                  degraded=degraded)
        self.submit(job, decision)
        if _truthy(query.get("wait")):
            await self._await_job(job, query)
            await self._respond(writer, 200, job.status())
            return
        status = job.status()
        status["status_url"] = f"/jobs/{job.id}"
        await self._respond(writer, 202, status)

    async def _await_job(self, job: Job, query: dict) -> bool:
        """Wait until ``job`` is terminal; returns False on timeout."""
        timeout = min(MAX_WAIT_SECONDS, _float_param(query, "timeout", 60.0))
        event = self._events.get(job.id)
        if event is None or job.state in (JobState.DONE, JobState.FAILED):
            return True
        try:
            await asyncio.wait_for(event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def _handle_status(self, writer, job: Job, query: dict) -> None:
        timed_out = False
        if _truthy(query.get("wait")):
            timed_out = not await self._await_job(job, query)
        status = job.status()
        if timed_out:
            status["timed_out"] = True
        await self._respond(writer, 200, status)

    async def _handle_events(self, writer, job: Job) -> None:
        """NDJSON status stream: one snapshot now, one when terminal."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        writer.write((json.dumps(job.status(), sort_keys=True) + "\n").encode("utf-8"))
        await writer.drain()
        if job.state not in (JobState.DONE, JobState.FAILED):
            event = self._events.get(job.id)
            if event is not None:
                try:
                    await asyncio.wait_for(event.wait(), MAX_WAIT_SECONDS)
                except asyncio.TimeoutError:
                    pass
            writer.write(
                (json.dumps(job.status(), sort_keys=True) + "\n").encode("utf-8")
            )
            await writer.drain()


#: Characters kept from an ``X-Repro-Client`` header value.  The header is
#: sanitised rather than rejected (it is advisory identity, not a spec
#: field) so a stray quote or space cannot 400 an otherwise valid job —
#: but only this charset survives, bounding metric-key cardinality.
_CLIENT_SANITIZE_RE = re.compile(r"[^A-Za-z0-9._-]+")

#: Admission identity for requests that declare none.
DEFAULT_CLIENT = "default"


def _client_id(headers: Dict[str, str], spec: JobSpec) -> str:
    """Admission identity: ``X-Repro-Client`` header, else the spec's
    ``client`` field, else :data:`DEFAULT_CLIENT`."""
    raw = headers.get("x-repro-client", "") or spec.client or ""
    cleaned = _CLIENT_SANITIZE_RE.sub("", raw)[:MAX_CLIENT_LEN]
    return cleaned or DEFAULT_CLIENT


def _truthy(value: Optional[str]) -> bool:
    return value is not None and value.lower() not in ("", "0", "false", "no")


def _float_param(query: dict, name: str, default: float) -> float:
    try:
        return float(query.get(name, default))
    except (TypeError, ValueError):
        return default


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
async def run_service(config: ServiceConfig, ready=None) -> None:
    """Start a service and block until it is shut down.

    ``ready(service)`` is invoked once the listener is bound (the CLI uses
    it to print/record the actual port; tests use it to capture the
    service object).
    """
    service = DecompositionService(config)
    await service.start()
    if ready is not None:
        ready(service)
    await service.wait_stopped()


class ServiceThread:
    """An in-process service on a daemon thread (tests, load generator).

    The thread runs its own event loop; ``stop()`` triggers the same
    graceful shutdown as ``POST /shutdown`` and joins the thread.
    """

    def __init__(self, **config_kwargs) -> None:
        config_kwargs.setdefault("port", 0)
        self.config = ServiceConfig(**config_kwargs)
        self.service: Optional[DecompositionService] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("service thread did not start within 60 s")
        if self._error is not None:
            raise RuntimeError(f"service thread failed to start: {self._error}")

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in __init__
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.service = DecompositionService(self.config)
        await self.service.start()
        self.port = self.service.port
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service.wait_stopped()

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread.is_alive() and self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.service.shutdown())
            )
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
